// Gossip protocol driver: one federated gmetad's membership agent.
//
// Modelled on the Group-Membership-List exemplar's three-layer stack: the
// agent is the P2P layer, net::Transport the EmulNet below it, and the
// gmetad daemon (or a deterministic sim loop) the application above.  Each
// tick() the agent
//
//   1. advances its own heartbeat and runs the failure-detection timers
//      (t_fail → SUSPECT, +t_cleanup → DEAD, +t_cleanup → dropped);
//   2. push-pull gossips its table with `fanout` ALIVE peers: write
//      digest, read the peer's digest back, merge both ways;
//   3. sends one *resurrection probe* when it has reason to doubt its view
//      — to a random SUSPECT/DEAD address whenever any exist (so a healed
//      partition reconverges: both sides keep dialling the members they
//      convicted), and to a seed every kSeedProbePeriod rounds otherwise
//      (so a fully pruned view can rediscover the group).
//
// Wire formats.  The legacy exchange ships the full table as a GOSSIP1
// text digest every round.  With `delta` enabled the agent instead runs
// binary digest-delta sessions (gossip/delta.hpp): a per-peer cursor
// remembers what the peer last acknowledged and each exchange carries only
// the rows that changed since, resyncing to a self-contained full table
// whenever either side detects a gap — the fed::apply state machine
// applied to membership.  Cursors only pay off against peers we revisit,
// so delta mode swaps random fanout for *rendezvous-stable partners*: each
// node ranks its alive peers by a pairwise hash and gossips with its top
// `fanout` — still a random graph across the grid (so dissemination keeps
// its log-n diameter) but stable between rounds, which is what keeps every
// steady-state exchange down to the handful of rows that actually changed.
// Inbound exchanges answer in whichever format the request used, and a
// per-peer backoff falls back to text when a peer fails binary exchanges.
//
// A carrier hook lets digests piggyback on out-of-band channels: when set
// (the gmetad wires it to its federation poll sessions), binary exchanges
// are offered to the carrier first and only dial a fresh gossip connection
// when no carrier channel exists for that peer.
//
// Completeness: every live member independently times out every silent
// peer, so every join, failure, and leave is eventually detected
// everywhere — message loss delays dissemination but cannot mask a
// failure, because detection needs no message at all.  Accuracy: a false
// suspicion lasts only until any digest carrying heartbeat progress
// arrives, and SUSPECT verdicts are never gossiped, so one member's slow
// link convicts nobody else.
//
// Driving: call tick() from a deterministic loop (sim tests, benches) or
// from the gmetad daemon scheduler.  start()/stop() only serve inbound
// exchanges on a listener; ticking stays with the caller so simulated and
// real deployments share every line of protocol code.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "gossip/delta.hpp"
#include "gossip/member_table.hpp"
#include "net/transport.hpp"

namespace ganglia::gossip {

struct AgentOptions {
  std::string id;                  ///< stable member id (grid name)
  std::string address;             ///< gossip bind/advertise address
  std::vector<std::string> seeds;  ///< bootstrap + seed-probe addresses
  TimeUs interval_us = 2 * kMicrosPerSecond;
  std::size_t fanout = 3;
  TimeUs t_fail_us = 20 * kMicrosPerSecond;
  TimeUs t_cleanup_us = 20 * kMicrosPerSecond;
  TimeUs connect_timeout_us = kMicrosPerSecond;
  std::uint64_t rng_seed = 0x676f73736970ULL;
  /// Initial self metadata (source=, xml=, parent=, authority=...).
  std::map<std::string, std::string> meta;

  // -- digest-delta sessions ------------------------------------------------
  /// Initiate binary digest-delta exchanges instead of full-table text
  /// digests.  (Inbound exchanges always answer in the request's format.)
  bool delta = false;
  /// Per-exchange digest payload cap; a full table that cannot fit answers
  /// with a structured refusal and the pair falls back to text.
  std::size_t max_digest_bytes = kMaxDigestBytes;
  /// Frame chunking bound for digest payloads (fed::Publisher-style).
  std::size_t max_frame = 64u << 10;
  /// Cursor/session LRU floor, each direction.  The effective cap is
  /// max(max_sessions, member count): sessions are per-peer protocol state,
  /// so evicting below the membership size thrashes (every eviction costs a
  /// full-table resync on the peer's next exchange).
  std::size_t max_sessions = 64;
  /// Rounds of text fallback after a failed binary exchange with a peer.
  std::uint64_t resync_backoff_rounds = 8;
};

struct AgentStats {
  std::uint64_t rounds = 0;
  std::uint64_t sends = 0;           ///< outbound exchanges attempted
  std::uint64_t send_failures = 0;   ///< connect/write/read failures
  std::uint64_t digests_received = 0;
  std::uint64_t bytes_out = 0;       ///< digest bytes written (both roles)
  std::uint64_t bytes_in = 0;        ///< digest bytes read (both roles)

  // -- digest-delta sessions ------------------------------------------------
  std::uint64_t digests_delta_sent = 0;  ///< incremental digests encoded
  std::uint64_t digests_full_sent = 0;   ///< self-contained fulls encoded
  std::uint64_t digest_rows_sent = 0;    ///< rows across all binary digests
  std::uint64_t digest_rows_suppressed = 0;  ///< echoes the peer already holds
  std::uint64_t full_resyncs = 0;    ///< established cursors invalidated
  std::uint64_t digest_rejects = 0;  ///< inbound digests refused -> resync
  std::uint64_t digest_refusals = 0;     ///< oversize tables refused
  std::uint64_t digest_truncations = 0;  ///< deltas cut at the byte cap
  std::uint64_t piggyback_exchanges = 0; ///< exchanges via the carrier
  std::uint64_t text_fallbacks = 0;      ///< peers demoted to text digests
};

/// One sender-side cursor, as exposed on /api/v1/members.
struct PeerSessionView {
  std::string peer;   ///< member id
  std::string mode;   ///< "delta" | "full" (resync pending) | "text"
  std::uint64_t acked_seq = 0;
  std::uint64_t rows_sent = 0;
  std::uint64_t resyncs = 0;
};

class Agent {
 public:
  using EventHandler = std::function<void(const MemberEvent&)>;
  /// Out-of-band digest channel: given a peer's gossip address and an
  /// encoded digest payload, perform one request/response exchange (the
  /// gmetad routes this over its federation poll stream).  Returns nullopt
  /// when no channel exists for that peer — the agent then dials directly.
  using Carrier = std::function<std::optional<Result<std::string>>(
      const std::string& peer_address, const std::string& request_payload)>;

  Agent(AgentOptions options, net::Transport& transport, Clock& clock);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// One gossip round: heartbeat, timers, fanout exchanges, probe.
  void tick();

  /// Receiver side of one exchange, either format: a GOSSIP1 text digest
  /// or framed binary digest frames.  Usable directly as an in-memory
  /// service; replies in the request's format.
  Result<std::string> handle_request(std::string_view request);
  /// Text-digest receiver (legacy wire format).
  Result<std::string> handle_digest(std::string_view request);
  /// Binary-digest receiver: one decoded payload in, one payload out.
  /// This is what the federation publisher's digest hook calls.
  Result<std::string> handle_digest_payload(std::string_view payload);
  net::ServiceFn service();

  /// Broadcast a LEFT tombstone (best effort) — call before shutdown.
  void leave();

  // -- views ---------------------------------------------------------------
  std::vector<MemberEntry> members() const;
  std::optional<MemberEntry> member(const std::string& id) const;
  std::size_t alive_count() const;
  AgentStats stats() const;
  std::vector<PeerSessionView> peer_sessions() const;
  const AgentOptions& options() const noexcept { return options_; }

  void set_self_meta(const std::string& key, std::string value);
  /// Transitions are dispatched outside the table lock, on whichever
  /// thread drove the merge (a tick, or a peer's exchange).
  void set_event_handler(EventHandler handler);
  void set_carrier(Carrier carrier);

  // -- daemon mode ---------------------------------------------------------
  /// Bind the gossip address and serve inbound exchanges until stop().
  /// (Ticking remains the caller's job.)
  Status start();
  void stop();
  std::string address() const;

  /// Seed-probe cadence when the view is healthy (every Nth round).
  static constexpr std::uint64_t kSeedProbePeriod = 8;

 private:
  /// One planned exchange: where to, what to send, which format.
  struct Outbound {
    PeerRef target;  ///< id empty when dialling an unknown seed address
    std::string payload;
    bool binary = false;
  };
  /// Sender half of one digest-delta session: what this peer acknowledged.
  struct SenderCursor {
    std::uint64_t epoch = 0;       ///< dictionary generation (0 = unset)
    bool established = false;      ///< peer acked a digest of this epoch
    std::uint64_t acked_seq = 0;   ///< table seq the peer applied through
    std::uint64_t acked_names = 0; ///< dictionary prefix the peer holds
    std::map<std::string, std::uint32_t> ids;  ///< member id -> dict id
    std::uint64_t rows_sent = 0;
    std::uint64_t resyncs = 0;
    std::uint64_t text_until_round = 0;  ///< binary backoff deadline
    std::uint64_t last_used = 0;
  };
  /// Receiver half: the state a sender's stream has been applied into.
  struct ReceiverSession {
    std::uint64_t epoch = 0;
    bool valid = false;
    std::uint64_t applied_seq = 0;
    std::vector<std::string> names;  ///< dict id -> member id
    /// Members dropped from our table since their fields were applied —
    /// a later row may not fill its address/meta from the (rejoined,
    /// possibly stale) local row; it must carry fields or force a resync.
    std::set<std::string> tainted;
    /// Liveness evidence the peer itself sent us — a lower bound on what
    /// they hold.  build_digest_locked suppresses rows at or below this
    /// bound: the peer's merge() would reject the echo anyway.  Without
    /// it, push-pull carries every row across each link twice (once in
    /// the request, again reflected in the reply).
    struct Heard {
      std::uint64_t incarnation = 0;
      std::uint64_t heartbeat = 0;
      bool left = false;
    };
    std::unordered_map<std::string, Heard> heard;
    std::uint64_t last_used = 0;
  };

  /// Pick this round's exchange targets (fanout + probe).
  std::vector<PeerRef> pick_targets();
  /// Rendezvous-stable partners (delta mode), cached per alive-set.
  const std::vector<PeerRef>& stable_partners();
  std::size_t session_cap_locked() const;
  SenderCursor& touch_cursor(const std::string& peer_id);
  ReceiverSession& touch_rx(const std::string& sender_id);
  /// Would `peer`'s merge() provably reject `entry` given what they have
  /// already sent us?  (Echo suppression — see ReceiverSession::heard.)
  static bool peer_holds(const ReceiverSession& rx, const MemberEntry& entry);
  /// Encode the next digest for `peer_id` (delta against the cursor, or a
  /// full/refusal) and update send-side stats.  Empty id = one-shot full.
  /// `refused`, when given, reports that the result is a byte-cap refusal.
  std::string build_digest_locked(const std::string& peer_id,
                                  bool* refused = nullptr);
  void apply_ack_locked(const std::string& peer_id, const DigestAck& ack);
  /// Strict applier: resolve + merge, or reject wholesale (never partial).
  bool apply_body_locked(const BinaryDigest& digest,
                         std::vector<MemberEvent>& events);
  DigestAck rx_ack_locked(const std::string& sender_id) const;
  void mark_text_fallback(const std::string& peer_id);
  void exchange_with(Outbound& out);
  void merge_digest_text(std::string_view text);
  void merge_reply_payload(std::string_view payload);
  void dispatch(std::vector<MemberEvent>& events);
  void serve_connection(net::Stream& stream);

  AgentOptions options_;
  net::Transport& transport_;
  Clock& clock_;

  mutable std::mutex mutex_;  ///< guards table_, stats_, rng_, sessions
  MemberTable table_;
  AgentStats stats_;
  Rng rng_;
  std::map<std::string, SenderCursor> cursors_;  ///< by peer id
  std::map<std::string, ReceiverSession> rx_;    ///< by sender id
  std::uint64_t session_use_ = 0;                ///< LRU clock
  std::uint64_t partners_version_ = 0;
  bool partners_valid_ = false;
  std::vector<PeerRef> partners_;

  std::mutex handler_mutex_;
  EventHandler handler_;
  Carrier carrier_;

  std::atomic<bool> running_{false};
  std::unique_ptr<net::Listener> listener_;
  std::vector<std::jthread> threads_;
};

}  // namespace ganglia::gossip
