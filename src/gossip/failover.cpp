#include "gossip/failover.hpp"

#include <utility>

namespace ganglia::gossip {

FailoverController::FailoverController(std::vector<std::string> primary_ids)
    : primaries_(primary_ids.begin(), primary_ids.end()) {}

void FailoverController::set_on_promote(Action action) {
  std::lock_guard lock(mutex_);
  on_promote_ = std::move(action);
}

void FailoverController::set_on_demote(Action action) {
  std::lock_guard lock(mutex_);
  on_demote_ = std::move(action);
}

void FailoverController::observe(const MemberEvent& event) {
  const std::string& id = event.entry.id;
  Action action;
  {
    std::lock_guard lock(mutex_);
    if (primaries_.find(id) == primaries_.end()) return;
    switch (event.kind) {
      case MemberEvent::Kind::died:
        if (covering_.insert(id).second) {
          ++promotions_;
          action = on_promote_;
        }
        break;
      case MemberEvent::Kind::recovered:
      case MemberEvent::Kind::joined:
        // A DEAD row that answers a probe recovers; a dropped row that
        // reappears joins.  Either way the primary is back.
        if (covering_.erase(id) != 0) {
          ++demotions_;
          action = on_demote_;
        }
        break;
      case MemberEvent::Kind::suspected:
      case MemberEvent::Kind::left:
      case MemberEvent::Kind::removed:
        // SUSPECT is not proof; LEFT/removed while promoted changes
        // nothing (the primary is still gone and we still cover it).
        break;
    }
  }
  if (action) action(id);
}

bool FailoverController::promoted(const std::string& primary_id) const {
  std::lock_guard lock(mutex_);
  return covering_.find(primary_id) != covering_.end();
}

bool FailoverController::any_promoted() const {
  std::lock_guard lock(mutex_);
  return !covering_.empty();
}

std::uint64_t FailoverController::promotions() const {
  std::lock_guard lock(mutex_);
  return promotions_;
}

std::uint64_t FailoverController::demotions() const {
  std::lock_guard lock(mutex_);
  return demotions_;
}

}  // namespace ganglia::gossip
