#include "gossip/delta.hpp"

#include "gossip/message.hpp"

namespace ganglia::gossip {

namespace {

void encode_ack(std::string& out, const DigestAck& ack) {
  net::put_u8(out, static_cast<std::uint8_t>(ack.kind));
  if (ack.kind == AckKind::cursor) {
    net::put_varint(out, ack.epoch);
    net::put_varint(out, ack.seq);
    net::put_varint(out, ack.names);
  }
}

bool decode_ack(net::WireReader& reader, DigestAck& ack) {
  std::uint8_t kind = 0;
  if (!reader.get_u8(kind)) return false;
  if (kind > static_cast<std::uint8_t>(AckKind::cursor)) return false;
  ack.kind = static_cast<AckKind>(kind);
  if (ack.kind == AckKind::cursor) {
    return reader.get_varint(ack.epoch) && reader.get_varint(ack.seq) &&
           reader.get_varint(ack.names) && ack.names <= kMaxDigestNames;
  }
  return true;
}

bool decode_row(net::WireReader& reader, DigestRow& row) {
  std::uint8_t flags = 0;
  if (!reader.get_u8(flags)) return false;
  if ((flags & ~kRowFlagsMask) != 0) return false;
  row.flags = flags;
  std::uint64_t name_id = 0;
  if (!reader.get_varint(name_id) || name_id >= kMaxDigestNames) return false;
  row.name_id = static_cast<std::uint32_t>(name_id);
  std::string_view s;
  if ((flags & kRowDefine) != 0) {
    if (!reader.get_string(s, kMaxDigestIdBytes) || s.empty()) return false;
    row.id.assign(s);
  }
  if ((flags & kRowFields) != 0) {
    if (!reader.get_string(s, kMaxDigestAddrBytes) || s.empty()) return false;
    row.address.assign(s);
  }
  if ((flags & kRowMeta) != 0) {
    // Metadata only travels alongside fresh fields; a bare meta flag is
    // structurally meaningless and rejected.
    if ((flags & kRowFields) == 0) return false;
    std::uint64_t pairs = 0;
    if (!reader.get_varint(pairs) || pairs > kMaxDigestMetaPairs) return false;
    for (std::uint64_t i = 0; i < pairs; ++i) {
      std::string_view key;
      std::string_view value;
      if (!reader.get_string(key, kMaxDigestMetaBytes) || key.empty()) {
        return false;
      }
      if (!reader.get_string(value, kMaxDigestMetaBytes)) return false;
      row.meta.emplace(std::string(key), std::string(value));
    }
  }
  return reader.get_varint(row.incarnation) && reader.get_varint(row.heartbeat);
}

}  // namespace

void encode_digest_row(std::string& out, const DigestRow& row) {
  net::put_u8(out, row.flags);
  net::put_varint(out, row.name_id);
  if ((row.flags & kRowDefine) != 0) net::put_string(out, row.id);
  if ((row.flags & kRowFields) != 0) net::put_string(out, row.address);
  if ((row.flags & kRowMeta) != 0) {
    net::put_varint(out, row.meta.size());
    for (const auto& [key, value] : row.meta) {
      net::put_string(out, key);
      net::put_string(out, value);
    }
  }
  net::put_varint(out, row.incarnation);
  net::put_varint(out, row.heartbeat);
}

std::string encode_binary_digest(const BinaryDigest& digest) {
  std::string out;
  net::put_varint(out, kDigestMagic);
  net::put_u8(out, static_cast<std::uint8_t>(digest.kind));
  net::put_string(out, digest.sender_id);
  encode_ack(out, digest.ack);
  if (digest.kind == DigestKind::refuse) {
    net::put_string(out, digest.refuse_reason);
    return out;
  }
  net::put_varint(out, digest.epoch);
  net::put_varint(out, digest.from_seq);
  net::put_varint(out, digest.to_seq);
  net::put_varint(out, digest.rows.size());
  for (const DigestRow& row : digest.rows) {
    encode_digest_row(out, row);
  }
  return out;
}

Result<BinaryDigest> decode_binary_digest(std::string_view payload) {
  net::WireReader reader(payload);
  const auto fail = [] {
    return Error{Errc::parse_error, "gossip: malformed binary digest"};
  };
  std::uint64_t magic = 0;
  if (!reader.get_varint(magic) || magic != kDigestMagic) return fail();
  BinaryDigest digest;
  std::uint8_t kind = 0;
  if (!reader.get_u8(kind) ||
      kind < static_cast<std::uint8_t>(DigestKind::full) ||
      kind > static_cast<std::uint8_t>(DigestKind::refuse)) {
    return fail();
  }
  digest.kind = static_cast<DigestKind>(kind);
  std::string_view s;
  if (!reader.get_string(s, kMaxDigestIdBytes) || s.empty()) return fail();
  digest.sender_id.assign(s);
  if (!decode_ack(reader, digest.ack)) return fail();
  if (digest.kind == DigestKind::refuse) {
    if (!reader.get_string(s, kMaxDigestReasonBytes)) return fail();
    digest.refuse_reason.assign(s);
    if (!reader.done()) return fail();
    return digest;
  }
  std::uint64_t row_count = 0;
  if (!reader.get_varint(digest.epoch) || !reader.get_varint(digest.from_seq) ||
      !reader.get_varint(digest.to_seq) || !reader.get_varint(row_count) ||
      row_count > kMaxDigestEntries) {
    return fail();
  }
  if (digest.from_seq > digest.to_seq) return fail();
  digest.rows.reserve(static_cast<std::size_t>(row_count));
  for (std::uint64_t i = 0; i < row_count; ++i) {
    DigestRow row;
    if (!decode_row(reader, row)) return fail();
    digest.rows.push_back(std::move(row));
  }
  if (!reader.done()) return fail();
  return digest;
}

void put_digest_frames(std::string& out, std::string_view payload,
                       std::size_t max_frame) {
  if (max_frame == 0) max_frame = 1;
  std::string begin;
  net::put_varint(begin, payload.size());
  net::put_frame(out, kFrameDigestBegin, begin);
  for (std::size_t off = 0; off < payload.size(); off += max_frame) {
    net::put_frame(out, kFrameDigestChunk,
                   payload.substr(off, std::min(max_frame,
                                                payload.size() - off)));
  }
}

namespace {

Result<std::uint64_t> digest_total(const net::Frame& begin,
                                   std::size_t max_payload) {
  if (begin.type != kFrameDigestBegin) {
    return Error{Errc::parse_error, "gossip: expected digest begin frame"};
  }
  net::WireReader reader(begin.payload);
  std::uint64_t total = 0;
  if (!reader.get_varint(total) || !reader.done() || total > max_payload) {
    return Error{Errc::parse_error, "gossip: bad digest begin frame"};
  }
  return total;
}

}  // namespace

Result<std::string> collect_digest_frames(std::string_view buf,
                                          std::size_t max_payload) {
  const std::size_t max_frame = max_payload + 64;
  net::Frame frame;
  std::size_t consumed = 0;
  if (net::parse_frame(buf, max_frame, frame, consumed) != net::FrameParse::ok) {
    return Error{Errc::parse_error, "gossip: truncated digest frames"};
  }
  buf.remove_prefix(consumed);
  auto total = digest_total(frame, max_payload);
  if (!total.ok()) return total.error();
  std::string payload;
  payload.reserve(static_cast<std::size_t>(*total));
  while (payload.size() < *total) {
    if (net::parse_frame(buf, max_frame, frame, consumed) !=
        net::FrameParse::ok) {
      return Error{Errc::parse_error, "gossip: truncated digest frames"};
    }
    buf.remove_prefix(consumed);
    if (frame.type != kFrameDigestChunk ||
        payload.size() + frame.payload.size() > *total) {
      return Error{Errc::parse_error, "gossip: bad digest chunk"};
    }
    payload.append(frame.payload);
  }
  if (!buf.empty()) {
    return Error{Errc::parse_error, "gossip: trailing bytes after digest"};
  }
  return payload;
}

Result<std::string> read_digest_frames(net::FrameReader& reader,
                                       const net::Frame& begin,
                                       std::size_t max_payload) {
  auto total = digest_total(begin, max_payload);
  if (!total.ok()) return total.error();
  std::string payload;
  payload.reserve(static_cast<std::size_t>(*total));
  while (payload.size() < *total) {
    auto frame = reader.next();
    if (!frame.ok()) return frame.error();
    if (frame->type != kFrameDigestChunk ||
        payload.size() + frame->payload.size() > *total) {
      return Error{Errc::parse_error, "gossip: bad digest chunk"};
    }
    payload.append(frame->payload);
  }
  return payload;
}

}  // namespace ganglia::gossip
