// Aggregator failover: promote a standby when a primary is declared DEAD.
//
// The controller watches MemberEvents for a configured set of primary ids
// and turns the level-free edge stream into exactly-once promote/demote
// actions:
//
//   died(primary)               → promote, once, while the primary stays
//                                 down (SUSPECT alone never promotes — a
//                                 slow link must not steal a subtree);
//   recovered/joined(primary)   → demote, once, when the primary proves
//                                 alive again.
//
// Because the member table never re-emits `died` without an intervening
// recovery (DEAD rows stay DEAD until dropped), and `removed` while
// promoted does not demote (the primary is still gone), the promoted flag
// cannot flap across a SUSPECT window: suspicion either refutes (no event
// we act on) or hardens into a single `died` edge.
//
// The controller is protocol-agnostic — the gmetad layer supplies the
// actions (adopt/drop the primary's advertised sources); deterministic
// tests count promotions()/demotions() directly.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "gossip/member_table.hpp"

namespace ganglia::gossip {

class FailoverController {
 public:
  /// `action(primary_id)` runs outside the controller lock.
  using Action = std::function<void(const std::string& primary_id)>;

  explicit FailoverController(std::vector<std::string> primary_ids);

  void set_on_promote(Action action);
  void set_on_demote(Action action);

  /// Feed one membership event (wire this as the Agent's event handler or
  /// call from a composite handler).
  void observe(const MemberEvent& event);

  /// Is this primary currently covered by us?
  bool promoted(const std::string& primary_id) const;
  /// Any primary covered?
  bool any_promoted() const;
  std::uint64_t promotions() const;
  std::uint64_t demotions() const;

 private:
  mutable std::mutex mutex_;
  std::set<std::string> primaries_;       ///< ids we stand by for
  std::set<std::string> covering_;        ///< currently promoted-for
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  Action on_promote_;
  Action on_demote_;
};

}  // namespace ganglia::gossip
