// Binary digest-delta wire format: membership gossip over net/framing.
//
// The line-oriented GOSSIP1 digest (message.hpp) retransmits the full
// member table every round — O(n) per exchange, O(n²) grid-wide.  This
// codec is the gossip twin of the fed delta protocol: each sender keeps a
// per-peer cursor of what the peer last acknowledged and ships only the
// rows whose (incarnation, heartbeat, state, metadata) changed since, with
// member ids interned into a per-session dictionary so a steady-state row
// costs a handful of bytes instead of a full text line.
//
// One digest payload (before framing):
//
//   varint  magic "GGD1"
//   u8      kind            full | delta | refuse
//   string  sender_id
//   u8      ack.kind        resync | cursor
//   [cursor: varint epoch, varint seq, varint names]
//   refuse: string reason                                   (then END)
//   varint  epoch           sender's dictionary generation
//   varint  from_seq        cursor floor this delta starts at (0 for full)
//   varint  to_seq          sender table seq covered by this digest
//   varint  row_count
//   row*    row_count
//
// Every digest — request or reply — carries an `ack` describing what the
// sender has applied *from the opposite stream*, so one push-pull exchange
// advances both cursors.  A row is:
//
//   u8      flags           define | fields | meta | left
//   varint  name_id
//   [define: string id]     binds name_id -> id (append or overwrite)
//   [fields: string address]
//   [meta:   varint n, n * (string key, string value)]
//   varint  incarnation
//   varint  heartbeat
//
// `fields` marks the address (and metadata, when `meta` is also set) as
// present; a row without it asserts the receiver already holds the
// member's current address/metadata from this same session and fills them
// from its own table.  The receiver is strict, exactly like fed::apply:
// unknown dictionary id, a gap (from_seq beyond what was applied), a
// dictionary-epoch mismatch, a fill-in for a row it no longer holds — any
// of these rejects the whole digest and answers with a resync ack, which
// makes the sender rebuild a self-contained full table.  Corruption can
// cost a round trip; it can never diverge a table.
//
// Frames: a digest rides the GFD1 frame space as kFrameDigestBegin (varint
// total payload size) followed by kFrameDigestChunk frames, each bounded
// by the negotiated max_frame — the same chunking fed::Publisher applies
// to full dumps, so a 10k-member table can never emit one unbounded frame.
// This is what lets a digest piggyback on an open federation connection:
// the publisher routes digest frames to the gossip agent and everything
// else to the poll codec, one persistent stream for polls, pings, and
// membership.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "net/framing.hpp"

namespace ganglia::gossip {

// Digest frame types, allocated from the GFD1 frame-type space
// (fed/codec.hpp stops at kFrameError = 9).
inline constexpr std::uint8_t kFrameDigestBegin = 10;
inline constexpr std::uint8_t kFrameDigestChunk = 11;

/// Payload magic: "GGD1" little-endian.
inline constexpr std::uint64_t kDigestMagic = 0x31444747;

enum class DigestKind : std::uint8_t {
  full = 1,    ///< self-contained table snapshot (resets the session)
  delta = 2,   ///< rows changed since from_seq, against the session
  refuse = 3,  ///< sender could not encode within the byte cap
};

enum class AckKind : std::uint8_t {
  resync = 0,  ///< no valid session for your stream: send me a full table
  cursor = 1,  ///< applied your stream through (epoch, seq, names)
};

/// What the digest's sender has applied from the receiver's stream.
struct DigestAck {
  AckKind kind = AckKind::resync;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t names = 0;  ///< dictionary entries applied (dense prefix)
};

// Row flags.
inline constexpr std::uint8_t kRowDefine = 0x01;  ///< binds name_id -> id
inline constexpr std::uint8_t kRowFields = 0x02;  ///< address (+meta) present
inline constexpr std::uint8_t kRowMeta = 0x04;    ///< metadata pairs follow
inline constexpr std::uint8_t kRowLeft = 0x08;    ///< LEFT tombstone
inline constexpr std::uint8_t kRowFlagsMask = 0x0f;

struct DigestRow {
  std::uint8_t flags = 0;
  std::uint32_t name_id = 0;
  std::string id;       ///< set iff kRowDefine
  std::string address;  ///< set iff kRowFields
  std::map<std::string, std::string> meta;  ///< meaningful iff kRowMeta
  std::uint64_t incarnation = 0;
  std::uint64_t heartbeat = 0;
};

struct BinaryDigest {
  DigestKind kind = DigestKind::full;
  std::string sender_id;
  DigestAck ack;
  std::string refuse_reason;  ///< kind == refuse only
  std::uint64_t epoch = 0;
  std::uint64_t from_seq = 0;
  std::uint64_t to_seq = 0;
  std::vector<DigestRow> rows;
};

// Hard caps the decoder enforces (the digest reuses the text codec's entry
// and byte ceilings so neither format can balloon a table).
inline constexpr std::size_t kMaxDigestIdBytes = 256;
inline constexpr std::size_t kMaxDigestAddrBytes = 256;
inline constexpr std::size_t kMaxDigestMetaPairs = 64;
inline constexpr std::size_t kMaxDigestMetaBytes = 2048;
inline constexpr std::size_t kMaxDigestNames = 65536;
inline constexpr std::size_t kMaxDigestReasonBytes = 256;

std::string encode_binary_digest(const BinaryDigest& digest);

/// Append one encoded row to `out` (the incremental form the agent uses to
/// enforce the per-digest byte cap row by row).
void encode_digest_row(std::string& out, const DigestRow& row);

/// Parse + validate one digest payload.  Structural validation only; the
/// session-level checks (epoch, cursor floor, dictionary resolution) are
/// the agent's.
Result<BinaryDigest> decode_binary_digest(std::string_view payload);

// -- framing ----------------------------------------------------------------

/// Append a digest payload as Begin + Chunk frames, each chunk bounded by
/// `max_frame` payload bytes.
void put_digest_frames(std::string& out, std::string_view payload,
                       std::size_t max_frame);

/// Reassemble a digest payload from a complete frame buffer (the in-memory
/// service path): Begin, then exactly enough Chunks, nothing trailing.
Result<std::string> collect_digest_frames(std::string_view buf,
                                          std::size_t max_payload);

/// Reassemble from a stream: `begin` is the already-read Begin frame, the
/// chunks are pulled from `reader`.
Result<std::string> read_digest_frames(net::FrameReader& reader,
                                       const net::Frame& begin,
                                       std::size_t max_payload);

/// Does this request buffer start like a GOSSIP1 text digest?  (A Begin
/// frame is always a handful of bytes, so its length varint can never be
/// 'G' = 0x47; one byte disambiguates the two wire formats.)
inline bool looks_like_text_digest(std::string_view request) {
  return !request.empty() && request.front() == 'G';
}

}  // namespace ganglia::gossip
