#include "gossip/agent.hpp"

#include <algorithm>
#include <utility>

#include "gossip/message.hpp"

namespace ganglia::gossip {

Agent::Agent(AgentOptions options, net::Transport& transport, Clock& clock)
    : options_(std::move(options)),
      transport_(transport),
      clock_(clock),
      table_(options_.id, options_.address, clock_.now_us()),
      rng_(options_.rng_seed) {
  for (const auto& [key, value] : options_.meta) {
    table_.set_self_meta(key, std::string(value));
  }
}

Agent::~Agent() { stop(); }

std::vector<std::string> Agent::pick_targets() {
  // Caller holds mutex_.
  std::vector<std::string> alive = table_.alive_peer_addresses();
  std::vector<std::string> targets;

  // Partial Fisher–Yates: the first `fanout` slots of a shuffle.
  const std::size_t k = std::min(options_.fanout, alive.size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + rng_.next_below(static_cast<std::uint32_t>(alive.size() - i));
    std::swap(alive[i], alive[j]);
    targets.push_back(alive[i]);
  }

  // Resurrection probe: while any peer stands convicted (or we know no live
  // peer at all), keep dialling the doubted addresses — if the silence was a
  // partition, the first answered probe re-merges both sides.  Otherwise
  // fall back to a periodic seed probe so a pruned table can rediscover the
  // group.
  const std::vector<std::string> faulty = table_.faulty_peer_addresses();
  if (!faulty.empty()) {
    targets.push_back(
        faulty[rng_.next_below(static_cast<std::uint32_t>(faulty.size()))]);
  } else if (!options_.seeds.empty() &&
             (alive.empty() || stats_.rounds % kSeedProbePeriod == 0)) {
    const std::string& seed = options_.seeds[rng_.next_below(
        static_cast<std::uint32_t>(options_.seeds.size()))];
    if (seed != table_.self().address &&
        std::find(targets.begin(), targets.end(), seed) == targets.end()) {
      targets.push_back(seed);
    }
  }
  return targets;
}

void Agent::tick() {
  std::vector<MemberEvent> events;
  std::string digest;
  std::vector<std::string> targets;
  {
    std::lock_guard lock(mutex_);
    const TimeUs now = clock_.now_us();
    table_.tick_self(now);
    table_.advance(now, options_.t_fail_us, options_.t_cleanup_us, events);
    ++stats_.rounds;
    targets = pick_targets();
    if (!targets.empty()) {
      digest = encode_digest(options_.id, table_.gossipable());
    }
  }
  dispatch(events);
  for (const std::string& target : targets) {
    exchange_with(target, digest);
  }
}

void Agent::exchange_with(const std::string& peer_address,
                          const std::string& digest) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.sends;
    stats_.bytes_out += digest.size();
  }
  const TimeUs timeout =
      std::min(options_.connect_timeout_us, options_.interval_us);
  auto conn = transport_.connect(peer_address, timeout);
  if (!conn.ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  net::Stream& stream = **conn;
  if (!stream.write_all(digest).ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  auto reply = net::read_to_eof(stream, kMaxDigestBytes);
  stream.close();
  if (!reply.ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  merge_digest_text(*reply);
}

void Agent::merge_digest_text(std::string_view text) {
  auto digest = decode_digest(text);
  if (!digest.ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  std::vector<MemberEvent> events;
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_in += text.size();
    ++stats_.digests_received;
    table_.merge(digest->entries, clock_.now_us(), events);
  }
  dispatch(events);
}

Result<std::string> Agent::handle_digest(std::string_view request) {
  auto digest = decode_digest(request);
  if (!digest.ok()) return digest.error();
  std::vector<MemberEvent> events;
  std::string reply;
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_in += request.size();
    ++stats_.digests_received;
    table_.merge(digest->entries, clock_.now_us(), events);
    reply = encode_digest(options_.id, table_.gossipable());
    stats_.bytes_out += reply.size();
  }
  dispatch(events);
  return reply;
}

net::ServiceFn Agent::service() {
  return [this](std::string_view request) { return handle_digest(request); };
}

void Agent::leave() {
  std::string digest;
  std::vector<std::string> targets;
  {
    std::lock_guard lock(mutex_);
    table_.leave_self(clock_.now_us());
    digest = encode_digest(options_.id, table_.gossipable());
    targets = table_.alive_peer_addresses();
    // Best effort: tell `fanout` live peers; gossip spreads the tombstone.
    if (targets.size() > options_.fanout) {
      for (std::size_t i = 0; i < options_.fanout; ++i) {
        const std::size_t j =
            i + rng_.next_below(static_cast<std::uint32_t>(targets.size() - i));
        std::swap(targets[i], targets[j]);
      }
      targets.resize(options_.fanout);
    }
  }
  for (const std::string& target : targets) {
    exchange_with(target, digest);
  }
}

void Agent::dispatch(std::vector<MemberEvent>& events) {
  if (events.empty()) return;
  EventHandler handler;
  {
    std::lock_guard lock(handler_mutex_);
    handler = handler_;
  }
  if (!handler) return;
  for (const MemberEvent& event : events) {
    handler(event);
  }
}

std::vector<MemberEntry> Agent::members() const {
  std::lock_guard lock(mutex_);
  return table_.snapshot();
}

std::optional<MemberEntry> Agent::member(const std::string& id) const {
  std::lock_guard lock(mutex_);
  const MemberEntry* entry = table_.find(id);
  if (entry == nullptr) return std::nullopt;
  return *entry;
}

std::size_t Agent::alive_count() const {
  std::lock_guard lock(mutex_);
  return table_.alive_count();
}

AgentStats Agent::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void Agent::set_self_meta(const std::string& key, std::string value) {
  std::lock_guard lock(mutex_);
  table_.set_self_meta(key, std::move(value));
}

void Agent::set_event_handler(EventHandler handler) {
  std::lock_guard lock(handler_mutex_);
  handler_ = std::move(handler);
}

Status Agent::start() {
  if (running_.exchange(true)) return Status{};
  auto listener = transport_.listen(options_.address);
  if (!listener.ok()) {
    running_.store(false);
    return listener.error();
  }
  listener_ = std::move(*listener);
  threads_.emplace_back([this] {
    while (running_.load()) {
      auto conn = listener_->accept();
      if (!conn.ok()) {
        if (!running_.load()) return;
        continue;
      }
      serve_connection(**conn);
    }
  });
  return Status{};
}

void Agent::serve_connection(net::Stream& stream) {
  // Accumulate lines until the END terminator, then answer with our digest.
  std::string request;
  for (;;) {
    auto line = net::read_line(stream, kMaxDigestLine + 1);
    if (!line.ok()) return;
    request += *line;
    request += '\n';
    if (*line == "END") break;
    if (request.size() > kMaxDigestBytes) return;
  }
  auto reply = handle_digest(request);
  if (!reply.ok()) return;
  (void)stream.write_all(*reply);
  stream.close();
}

void Agent::stop() {
  if (!running_.exchange(false)) return;
  if (listener_) listener_->close();
  threads_.clear();
  listener_.reset();
}

std::string Agent::address() const {
  return listener_ ? listener_->address() : options_.address;
}

}  // namespace ganglia::gossip
