#include "gossip/agent.hpp"

#include <algorithm>
#include <utility>

#include "gossip/message.hpp"

namespace ganglia::gossip {

namespace {

std::uint64_t hash_str(std::string_view s) {
  // FNV-1a 64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t z) {
  // SplitMix64 finalizer.
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Agent::Agent(AgentOptions options, net::Transport& transport, Clock& clock)
    : options_(std::move(options)),
      transport_(transport),
      clock_(clock),
      table_(options_.id, options_.address, clock_.now_us()),
      rng_(options_.rng_seed) {
  for (const auto& [key, value] : options_.meta) {
    table_.set_self_meta(key, std::string(value));
  }
}

Agent::~Agent() { stop(); }

const std::vector<PeerRef>& Agent::stable_partners() {
  // Caller holds mutex_.  Recomputed only when the alive set changes:
  // stable pairings are what give the per-peer cursors something to
  // amortise against, and the pairwise-hash ranking still yields a random
  // graph across the grid (expected degree ~2·fanout), so dissemination
  // keeps the log-n spread that random fanout had.
  const std::uint64_t version = table_.membership_version();
  if (partners_valid_ && partners_version_ == version) return partners_;
  partners_valid_ = true;
  partners_version_ = version;
  partners_.clear();
  std::vector<PeerRef> alive = table_.alive_peers();
  const std::size_t k = std::min(options_.fanout, alive.size());
  if (k == 0) return partners_;
  const std::uint64_t self_hash = hash_str(options_.id);
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(alive.size());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    scored.emplace_back(
        mix64(self_hash ^ (hash_str(alive[i].id) * 0x9e3779b97f4a7c15ULL)), i);
  }
  std::partial_sort(
      scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
      scored.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; i < k; ++i) {
    partners_.push_back(std::move(alive[scored[i].second]));
  }
  return partners_;
}

std::vector<PeerRef> Agent::pick_targets() {
  // Caller holds mutex_.
  std::vector<PeerRef> alive = table_.alive_peers();
  std::vector<PeerRef> targets;

  if (options_.delta) {
    targets = stable_partners();
  } else {
    // Partial Fisher–Yates: the first `fanout` slots of a shuffle.
    const std::size_t k = std::min(options_.fanout, alive.size());
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + rng_.next_below(static_cast<std::uint32_t>(alive.size() - i));
      std::swap(alive[i], alive[j]);
      targets.push_back(alive[i]);
    }
  }

  // Resurrection probe: while any peer stands convicted (or we know no live
  // peer at all), keep dialling the doubted addresses — if the silence was a
  // partition, the first answered probe re-merges both sides.  Otherwise
  // fall back to a periodic seed probe so a pruned table can rediscover the
  // group.
  const std::vector<PeerRef> faulty = table_.faulty_peers();
  if (!faulty.empty()) {
    targets.push_back(
        faulty[rng_.next_below(static_cast<std::uint32_t>(faulty.size()))]);
  } else if (!options_.seeds.empty() &&
             (alive.empty() || stats_.rounds % kSeedProbePeriod == 0)) {
    const std::string& seed = options_.seeds[rng_.next_below(
        static_cast<std::uint32_t>(options_.seeds.size()))];
    const bool already =
        std::any_of(targets.begin(), targets.end(),
                    [&](const PeerRef& t) { return t.address == seed; });
    if (seed != table_.self().address && !already) {
      PeerRef ref{"", seed};
      for (const PeerRef& peer : alive) {
        if (peer.address == seed) {
          ref.id = peer.id;
          break;
        }
      }
      targets.push_back(std::move(ref));
    }
  }
  return targets;
}

// Session capacity: the configured LRU bound is a floor, not a ceiling —
// sessions are per-peer protocol state, so the natural working set is the
// membership itself.  Evicting below that thrashes: every member
// seed-probes on the same cadence, and a seed whose sessions cycle
// answers each prober with a resync, turning O(changed) steady-state
// digests back into full tables.  Memory stays O(n), which the member
// table already is.
std::size_t Agent::session_cap_locked() const {
  return std::max(options_.max_sessions, table_.size());
}

Agent::SenderCursor& Agent::touch_cursor(const std::string& peer_id) {
  auto it = cursors_.find(peer_id);
  if (it == cursors_.end()) {
    if (cursors_.size() >= session_cap_locked()) {
      auto victim = cursors_.begin();
      for (auto i = cursors_.begin(); i != cursors_.end(); ++i) {
        if (i->second.last_used < victim->second.last_used) victim = i;
      }
      cursors_.erase(victim);
    }
    it = cursors_.emplace(peer_id, SenderCursor{}).first;
  }
  it->second.last_used = ++session_use_;
  return it->second;
}

Agent::ReceiverSession& Agent::touch_rx(const std::string& sender_id) {
  auto it = rx_.find(sender_id);
  if (it == rx_.end()) {
    if (rx_.size() >= session_cap_locked()) {
      auto victim = rx_.begin();
      for (auto i = rx_.begin(); i != rx_.end(); ++i) {
        if (i->second.last_used < victim->second.last_used) victim = i;
      }
      rx_.erase(victim);
    }
    it = rx_.emplace(sender_id, ReceiverSession{}).first;
  }
  it->second.last_used = ++session_use_;
  return it->second;
}

DigestAck Agent::rx_ack_locked(const std::string& sender_id) const {
  const auto it = rx_.find(sender_id);
  if (it == rx_.end() || !it->second.valid) return DigestAck{};
  const ReceiverSession& session = it->second;
  return DigestAck{AckKind::cursor, session.epoch, session.applied_seq,
                   session.names.size()};
}

bool Agent::peer_holds(const ReceiverSession& rx, const MemberEntry& entry) {
  const auto it = rx.heard.find(entry.id);
  if (it == rx.heard.end()) return false;
  const ReceiverSession::Heard& heard = it->second;
  if (heard.left) {
    // Tombstoned at the peer: merge() only listens to a fresher-incarnation
    // rejoin; further tombstones and same-life heartbeats are ignored.
    return entry.state == MemberState::left ||
           entry.incarnation <= heard.incarnation;
  }
  if (entry.state == MemberState::left) {
    // merge() honours a tombstone at an equal-or-newer incarnation.
    return entry.incarnation < heard.incarnation;
  }
  // Liveness rows need strictly fresher (incarnation, heartbeat) to land.
  return entry.incarnation < heard.incarnation ||
         (entry.incarnation == heard.incarnation &&
          entry.heartbeat <= heard.heartbeat);
}

std::string Agent::build_digest_locked(const std::string& peer_id,
                                       bool* refused) {
  BinaryDigest digest;
  digest.sender_id = options_.id;
  if (!peer_id.empty()) digest.ack = rx_ack_locked(peer_id);
  SenderCursor* cursor = peer_id.empty() ? nullptr : &touch_cursor(peer_id);
  const bool incremental = cursor != nullptr && cursor->established;
  const std::uint64_t floor = incremental ? cursor->acked_seq : 0;

  if (incremental) {
    digest.kind = DigestKind::delta;
    digest.epoch = cursor->epoch;
  } else {
    // Full resync: a fresh dictionary generation.  The epoch fences stale
    // acks from the previous generation, and reassigning ids densely keeps
    // the receiver's dictionary hole-free.
    digest.kind = DigestKind::full;
    digest.epoch = rng_.next_u64() | 1;
    if (cursor != nullptr) {
      cursor->epoch = digest.epoch;
      cursor->ids.clear();
      cursor->acked_seq = 0;
      cursor->acked_names = 0;
    }
  }
  digest.from_seq = floor;
  digest.to_seq = table_.seq();

  std::map<std::string, std::uint32_t> one_shot_ids;
  std::map<std::string, std::uint32_t>& ids =
      cursor != nullptr ? cursor->ids : one_shot_ids;
  const std::vector<const MemberEntry*> changed = table_.gossipable_since(floor);
  const ReceiverSession* peer_rx = nullptr;
  if (!peer_id.empty()) {
    const auto rx_it = rx_.find(peer_id);
    if (rx_it != rx_.end()) peer_rx = &rx_it->second;
  }

  // Encode rows against the byte cap (96 bytes of header slack).
  const std::size_t budget =
      options_.max_digest_bytes > 96 ? options_.max_digest_bytes - 96 : 0;
  std::string scratch;
  std::uint64_t covered = floor;
  bool truncated = false;
  for (const MemberEntry* entry : changed) {
    if (digest.rows.size() >= kMaxDigestEntries) {
      truncated = true;
      break;
    }
    if (peer_rx != nullptr && peer_holds(*peer_rx, *entry)) {
      // Echo suppression: the peer told us this row (or fresher) itself —
      // their merge() would reject it.  The cursor still advances past it;
      // any later change re-versions the row back into the next delta.
      covered = entry->version;
      ++stats_.digest_rows_suppressed;
      continue;
    }
    DigestRow row;
    const auto [it, inserted] =
        ids.try_emplace(entry->id, static_cast<std::uint32_t>(ids.size()));
    row.name_id = it->second;
    if (!incremental || inserted || row.name_id >= cursor->acked_names) {
      row.flags |= kRowDefine;
      row.id = entry->id;
    }
    if (!incremental || entry->fields_version > floor) {
      row.flags |= kRowFields;
      row.address = entry->address;
      if (!entry->meta.empty()) {
        row.flags |= kRowMeta;
        row.meta = entry->meta;
      }
    }
    if (entry->state == MemberState::left) row.flags |= kRowLeft;
    row.incarnation = entry->incarnation;
    row.heartbeat = entry->heartbeat;
    const std::size_t before = scratch.size();
    encode_digest_row(scratch, row);
    if (scratch.size() > budget) {
      scratch.resize(before);
      truncated = true;
      break;
    }
    covered = entry->version;
    digest.rows.push_back(std::move(row));
  }

  if (truncated && !incremental) {
    // The full table itself cannot fit: structured refusal, and back off
    // to text digests (whose cap is independent) so membership still flows.
    BinaryDigest refusal;
    refusal.kind = DigestKind::refuse;
    refusal.sender_id = options_.id;
    refusal.ack = digest.ack;
    refusal.refuse_reason = "member table exceeds digest byte cap";
    ++stats_.digest_refusals;
    if (refused != nullptr) *refused = true;
    if (cursor != nullptr) {
      cursor->text_until_round =
          stats_.rounds + options_.resync_backoff_rounds;
      ++stats_.text_fallbacks;
    }
    return encode_binary_digest(refusal);
  }
  if (truncated) {
    // A cut delta stays correct by claiming only the covered prefix: the
    // peer's ack floor advances to `covered` and the rest ships next round.
    ++stats_.digest_truncations;
    digest.to_seq = covered;
  }

  if (incremental) {
    ++stats_.digests_delta_sent;
  } else {
    ++stats_.digests_full_sent;
  }
  stats_.digest_rows_sent += digest.rows.size();
  if (cursor != nullptr) cursor->rows_sent += digest.rows.size();
  return encode_binary_digest(digest);
}

void Agent::apply_ack_locked(const std::string& peer_id,
                             const DigestAck& ack) {
  const auto it = cursors_.find(peer_id);
  if (it == cursors_.end()) return;
  SenderCursor& cursor = it->second;
  if (ack.kind == AckKind::cursor) {
    if (cursor.epoch == 0 || ack.epoch != cursor.epoch) return;  // stale
    cursor.established = true;
    cursor.acked_seq =
        std::max(cursor.acked_seq, std::min(ack.seq, table_.seq()));
    cursor.acked_names = std::max(
        cursor.acked_names,
        std::min<std::uint64_t>(ack.names, cursor.ids.size()));
  } else if (cursor.established) {
    // The peer lost our session (restart, eviction, reject): next digest
    // is a self-contained full.
    cursor.established = false;
    ++cursor.resyncs;
    ++stats_.full_resyncs;
  }
}

bool Agent::apply_body_locked(const BinaryDigest& digest,
                              std::vector<MemberEvent>& events) {
  ReceiverSession& session = touch_rx(digest.sender_id);
  if (digest.kind == DigestKind::refuse) return true;  // nothing to apply
  const bool full = digest.kind == DigestKind::full;
  if (!full) {
    // `from_seq <= applied_seq` rather than `==`: merges are idempotent,
    // so replaying rows we already applied (a lost ack left the sender's
    // floor behind) is harmless; only a gap *beyond* what we applied — or
    // a different dictionary generation — forces a resync.
    if (!session.valid || session.epoch != digest.epoch ||
        digest.from_seq > session.applied_seq) {
      session.valid = false;
      ++stats_.digest_rejects;
      return false;
    }
  }

  // Phase 1: resolve every row, staging dictionary changes.  Any failure
  // rejects the whole digest before a single row is merged — the strict
  // applier rule that makes corruption cost a resync, never divergence.
  const std::size_t base = full ? 0 : session.names.size();
  std::map<std::uint32_t, std::string> staged;
  std::size_t appended = 0;
  std::vector<MemberEntry> entries;
  entries.reserve(digest.rows.size());
  std::vector<const std::string*> fresh_fields;
  for (const DigestRow& row : digest.rows) {
    std::string id;
    if ((row.flags & kRowDefine) != 0) {
      if (row.name_id > base + appended) {
        session.valid = false;
        ++stats_.digest_rejects;
        return false;  // dictionary gap
      }
      if (row.name_id == base + appended) ++appended;
      staged[row.name_id] = row.id;
      id = row.id;
    } else {
      const auto it = staged.find(row.name_id);
      if (it != staged.end()) {
        id = it->second;
      } else if (!full && row.name_id < base &&
                 !session.names[row.name_id].empty()) {
        id = session.names[row.name_id];
      } else {
        session.valid = false;
        ++stats_.digest_rejects;
        return false;  // unknown dictionary id
      }
    }
    MemberEntry entry;
    entry.id = id;
    if ((row.flags & kRowFields) != 0) {
      entry.address = row.address;
      if ((row.flags & kRowMeta) != 0) entry.meta = row.meta;
    } else {
      // Context-stateful row: fill address/meta from our own table, which
      // the session contract guarantees is current — unless we dropped and
      // re-learned the member since (tainted), where the local copy may be
      // from an older life.  Either miss is a hard reject.
      if (full) {
        session.valid = false;
        ++stats_.digest_rejects;
        return false;  // fulls must be self-contained
      }
      const MemberEntry* own = table_.find(id);
      if (own == nullptr || session.tainted.count(id) != 0) {
        session.valid = false;
        ++stats_.digest_rejects;
        return false;
      }
      entry.address = own->address;
      entry.meta = own->meta;
    }
    entry.state =
        (row.flags & kRowLeft) != 0 ? MemberState::left : MemberState::alive;
    entry.incarnation = row.incarnation;
    entry.heartbeat = row.heartbeat;
    entries.push_back(std::move(entry));
    if ((row.flags & kRowFields) != 0) {
      fresh_fields.push_back(&entries.back().id);
    }
  }

  // Phase 2: commit.
  if (full) {
    session.epoch = digest.epoch;
    session.names.assign(appended, std::string());
    session.applied_seq = digest.to_seq;
    session.valid = true;
    session.tainted.clear();
    session.heard.clear();  // the full IS the peer's table; start over
  } else {
    session.names.resize(base + appended);
    session.applied_seq = std::max(session.applied_seq, digest.to_seq);
  }
  for (auto& [name_id, name] : staged) {
    session.names[name_id] = std::move(name);
  }
  for (const std::string* id : fresh_fields) {
    session.tainted.erase(*id);
  }
  for (const MemberEntry& entry : entries) {
    // Record what the peer demonstrably holds (echo suppression's floor).
    ReceiverSession::Heard& heard = session.heard[entry.id];
    const bool newer_life = entry.incarnation > heard.incarnation;
    if (!newer_life && (entry.incarnation < heard.incarnation ||
                        entry.heartbeat < heard.heartbeat)) {
      continue;
    }
    if (entry.state == MemberState::left) {
      heard.left = true;
    } else if (newer_life) {
      heard.left = false;  // a fresher incarnation supersedes a tombstone
    }
    heard.incarnation = entry.incarnation;
    heard.heartbeat = entry.heartbeat;
  }
  table_.merge(entries, clock_.now_us(), events);
  return true;
}

void Agent::mark_text_fallback(const std::string& peer_id) {
  if (peer_id.empty()) return;
  std::lock_guard lock(mutex_);
  SenderCursor& cursor = touch_cursor(peer_id);
  cursor.established = false;
  cursor.text_until_round = stats_.rounds + options_.resync_backoff_rounds;
  ++stats_.text_fallbacks;
}

void Agent::tick() {
  std::vector<MemberEvent> events;
  std::vector<Outbound> outs;
  {
    std::lock_guard lock(mutex_);
    const TimeUs now = clock_.now_us();
    table_.tick_self(now);
    table_.advance(now, options_.t_fail_us, options_.t_cleanup_us, events);
    ++stats_.rounds;
    // A removed row taints every receiver session holding it: a later
    // context-stateful row for that member can no longer trust the local
    // copy (it may be a re-learned older life) and must carry its fields.
    for (const MemberEvent& event : events) {
      if (event.kind == MemberEvent::Kind::removed) {
        for (auto& [sender, session] : rx_) {
          (void)sender;
          session.tainted.insert(event.entry.id);
          // Drop the echo-suppression floor too: if the member rejoins in
          // a same-incarnation life, stale "peer holds fresher" evidence
          // must not stop us forwarding the rejoin.
          session.heard.erase(event.entry.id);
        }
      }
    }
    std::string text;
    for (PeerRef& target : pick_targets()) {
      Outbound out;
      out.target = std::move(target);
      out.binary = options_.delta;
      if (out.binary && !out.target.id.empty()) {
        const auto it = cursors_.find(out.target.id);
        if (it != cursors_.end() &&
            stats_.rounds < it->second.text_until_round) {
          out.binary = false;  // backoff window after a binary failure
        }
      }
      if (out.binary) {
        // A table too big for the binary cap refuses at build time; don't
        // waste the round trip on a doomed exchange — initiate in text
        // (the responder path still answers inbound requests with the
        // structured refusal, since binary callers read binary replies).
        bool refused = false;
        out.payload = build_digest_locked(out.target.id, &refused);
        if (refused) out.binary = false;
      }
      if (!out.binary) {
        if (text.empty()) {
          text = encode_digest(options_.id, table_.gossipable());
        }
        out.payload = text;
      }
      outs.push_back(std::move(out));
    }
  }
  dispatch(events);
  for (Outbound& out : outs) {
    exchange_with(out);
  }
}

void Agent::exchange_with(Outbound& out) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.sends;
    stats_.bytes_out += out.payload.size();
  }
  const TimeUs timeout =
      std::min(options_.connect_timeout_us, options_.interval_us);

  if (out.binary) {
    // Piggyback: offer the exchange to the carrier (an already-open
    // federation stream) first; dial a gossip connection only when no
    // carrier channel exists for this peer.
    Carrier carrier;
    {
      std::lock_guard lock(handler_mutex_);
      carrier = carrier_;
    }
    if (carrier) {
      auto via = carrier(out.target.address, out.payload);
      if (via.has_value()) {
        if (via->ok()) {
          {
            std::lock_guard lock(mutex_);
            ++stats_.piggyback_exchanges;
          }
          merge_reply_payload(**via);
          return;
        }
        // The carrier channel existed but broke mid-exchange; fall through
        // to a direct dial this round.
      }
    }
  }

  auto conn = transport_.connect(out.target.address, timeout);
  if (!conn.ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  net::Stream& stream = **conn;

  if (!out.binary) {
    if (!stream.write_all(out.payload).ok()) {
      std::lock_guard lock(mutex_);
      ++stats_.send_failures;
      return;
    }
    auto reply = net::read_to_eof(stream, kMaxDigestBytes);
    stream.close();
    if (!reply.ok()) {
      std::lock_guard lock(mutex_);
      ++stats_.send_failures;
      return;
    }
    merge_digest_text(*reply);
    return;
  }

  std::string framed;
  put_digest_frames(framed, out.payload, options_.max_frame);
  if (!stream.write_all(framed).ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  net::FrameReader reader(stream, options_.max_frame + 64);
  auto begin = reader.next();
  if (!begin.ok()) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.send_failures;
    }
    // Closed-without-reply is how a binary-unaware peer reacts; back off
    // to text digests with it for a while.
    mark_text_fallback(out.target.id);
    return;
  }
  auto payload = read_digest_frames(reader, *begin, options_.max_digest_bytes);
  stream.close();
  if (!payload.ok()) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.send_failures;
    }
    mark_text_fallback(out.target.id);
    return;
  }
  merge_reply_payload(*payload);
}

void Agent::merge_digest_text(std::string_view text) {
  auto digest = decode_digest(text);
  if (!digest.ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  std::vector<MemberEvent> events;
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_in += text.size();
    ++stats_.digests_received;
    table_.merge(digest->entries, clock_.now_us(), events);
  }
  dispatch(events);
}

void Agent::merge_reply_payload(std::string_view payload) {
  auto digest = decode_binary_digest(payload);
  if (!digest.ok()) {
    std::lock_guard lock(mutex_);
    ++stats_.send_failures;
    return;
  }
  std::vector<MemberEvent> events;
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_in += payload.size();
    ++stats_.digests_received;
    apply_ack_locked(digest->sender_id, digest->ack);
    apply_body_locked(*digest, events);
  }
  if (digest->kind == DigestKind::refuse) {
    // The peer's table exceeds its digest cap; give text digests a go.
    mark_text_fallback(digest->sender_id);
  }
  dispatch(events);
}

Result<std::string> Agent::handle_digest(std::string_view request) {
  auto digest = decode_digest(request);
  if (!digest.ok()) return digest.error();
  std::vector<MemberEvent> events;
  std::string reply;
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_in += request.size();
    ++stats_.digests_received;
    table_.merge(digest->entries, clock_.now_us(), events);
    reply = encode_digest(options_.id, table_.gossipable());
    stats_.bytes_out += reply.size();
  }
  dispatch(events);
  return reply;
}

Result<std::string> Agent::handle_digest_payload(std::string_view payload) {
  auto digest = decode_binary_digest(payload);
  if (!digest.ok()) return digest.error();
  if (digest->sender_id == options_.id) {
    return Error{Errc::invalid_argument, "gossip: digest from own id"};
  }
  std::vector<MemberEvent> events;
  std::string reply;
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_in += payload.size();
    ++stats_.digests_received;
    apply_ack_locked(digest->sender_id, digest->ack);
    apply_body_locked(*digest, events);
    // Reply after applying, so our ack covers the digest we just took and
    // the initiator's floor advances one round sooner.  A rejected body
    // still gets a reply — carrying the resync ack that heals the session.
    reply = build_digest_locked(digest->sender_id);
    stats_.bytes_out += reply.size();
  }
  dispatch(events);
  return reply;
}

Result<std::string> Agent::handle_request(std::string_view request) {
  if (looks_like_text_digest(request)) return handle_digest(request);
  auto payload = collect_digest_frames(request, options_.max_digest_bytes);
  if (!payload.ok()) return payload.error();
  auto reply = handle_digest_payload(*payload);
  if (!reply.ok()) return reply.error();
  std::string framed;
  put_digest_frames(framed, *reply, options_.max_frame);
  return framed;
}

net::ServiceFn Agent::service() {
  return [this](std::string_view request) { return handle_request(request); };
}

void Agent::leave() {
  std::vector<Outbound> outs;
  {
    std::lock_guard lock(mutex_);
    table_.leave_self(clock_.now_us());
    // The tombstone goes out as a text digest: a one-shot, best-effort
    // broadcast has no session to amortise and every peer accepts text.
    std::string digest = encode_digest(options_.id, table_.gossipable());
    std::vector<PeerRef> targets = table_.alive_peers();
    // Best effort: tell `fanout` live peers; gossip spreads the tombstone.
    if (targets.size() > options_.fanout) {
      for (std::size_t i = 0; i < options_.fanout; ++i) {
        const std::size_t j =
            i + rng_.next_below(static_cast<std::uint32_t>(targets.size() - i));
        std::swap(targets[i], targets[j]);
      }
      targets.resize(options_.fanout);
    }
    for (PeerRef& target : targets) {
      outs.push_back({std::move(target), digest, false});
    }
  }
  for (Outbound& out : outs) {
    exchange_with(out);
  }
}

void Agent::dispatch(std::vector<MemberEvent>& events) {
  if (events.empty()) return;
  EventHandler handler;
  {
    std::lock_guard lock(handler_mutex_);
    handler = handler_;
  }
  if (!handler) return;
  for (const MemberEvent& event : events) {
    handler(event);
  }
}

std::vector<MemberEntry> Agent::members() const {
  std::lock_guard lock(mutex_);
  return table_.snapshot();
}

std::optional<MemberEntry> Agent::member(const std::string& id) const {
  std::lock_guard lock(mutex_);
  const MemberEntry* entry = table_.find(id);
  if (entry == nullptr) return std::nullopt;
  return *entry;
}

std::size_t Agent::alive_count() const {
  std::lock_guard lock(mutex_);
  return table_.alive_count();
}

AgentStats Agent::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<PeerSessionView> Agent::peer_sessions() const {
  std::lock_guard lock(mutex_);
  std::vector<PeerSessionView> out;
  out.reserve(cursors_.size());
  for (const auto& [peer, cursor] : cursors_) {
    PeerSessionView view;
    view.peer = peer;
    if (stats_.rounds < cursor.text_until_round) {
      view.mode = "text";
    } else if (cursor.established) {
      view.mode = "delta";
    } else {
      view.mode = "full";
    }
    view.acked_seq = cursor.acked_seq;
    view.rows_sent = cursor.rows_sent;
    view.resyncs = cursor.resyncs;
    out.push_back(std::move(view));
  }
  return out;
}

void Agent::set_self_meta(const std::string& key, std::string value) {
  std::lock_guard lock(mutex_);
  table_.set_self_meta(key, std::move(value));
}

void Agent::set_event_handler(EventHandler handler) {
  std::lock_guard lock(handler_mutex_);
  handler_ = std::move(handler);
}

void Agent::set_carrier(Carrier carrier) {
  std::lock_guard lock(handler_mutex_);
  carrier_ = std::move(carrier);
}

Status Agent::start() {
  if (running_.exchange(true)) return Status{};
  auto listener = transport_.listen(options_.address);
  if (!listener.ok()) {
    running_.store(false);
    return listener.error();
  }
  listener_ = std::move(*listener);
  threads_.emplace_back([this] {
    while (running_.load()) {
      auto conn = listener_->accept();
      if (!conn.ok()) {
        if (!running_.load()) return;
        continue;
      }
      serve_connection(**conn);
    }
  });
  return Status{};
}

void Agent::serve_connection(net::Stream& stream) {
  // One request per connection, in either wire format.  The first byte
  // disambiguates: 'G' opens a GOSSIP1 text digest, anything else is the
  // length varint of a (tiny) digest Begin frame.
  std::string buf;
  char chunk[4096];
  std::size_t off = 0;           // consumed frame bytes (binary)
  std::string payload;           // reassembled binary digest
  std::uint64_t total = 0;
  bool have_total = false;
  bool text = false;
  bool complete = false;
  while (!complete) {
    auto n = stream.read(chunk, sizeof chunk);
    if (!n.ok() || *n == 0) return;
    buf.append(chunk, *n);
    if (buf.front() == 'G') {
      const std::size_t pos = buf.find("\nEND\n");
      if (pos != std::string::npos) {
        buf.resize(pos + 5);
        text = true;
        complete = true;
      } else if (buf.size() > kMaxDigestBytes) {
        return;
      }
      continue;
    }
    for (;;) {
      net::Frame frame;
      std::size_t consumed = 0;
      const auto parsed =
          net::parse_frame(std::string_view(buf).substr(off),
                           options_.max_frame + 64, frame, consumed);
      if (parsed == net::FrameParse::error) return;
      if (parsed == net::FrameParse::need_more) break;
      off += consumed;
      if (!have_total) {
        if (frame.type != kFrameDigestBegin) return;
        net::WireReader reader(frame.payload);
        if (!reader.get_varint(total) || !reader.done() ||
            total > options_.max_digest_bytes) {
          return;
        }
        have_total = true;
      } else {
        if (frame.type != kFrameDigestChunk ||
            payload.size() + frame.payload.size() > total) {
          return;
        }
        payload.append(frame.payload);
      }
      if (have_total && payload.size() == total) {
        complete = true;
        break;
      }
    }
  }
  if (text) {
    auto reply = handle_digest(buf);
    if (!reply.ok()) return;
    (void)stream.write_all(*reply);
  } else {
    auto reply = handle_digest_payload(payload);
    if (!reply.ok()) return;
    std::string framed;
    put_digest_frames(framed, *reply, options_.max_frame);
    (void)stream.write_all(framed);
  }
  stream.close();
}

void Agent::stop() {
  if (!running_.exchange(false)) return;
  if (listener_) listener_->close();
  threads_.clear();
  listener_.reset();
}

std::string Agent::address() const {
  return listener_ ? listener_->address() : options_.address;
}

}  // namespace ganglia::gossip
