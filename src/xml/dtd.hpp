// Ganglia DTD validation.
//
// "Their XML output conforms to the Ganglia DTD, and therefore requires the
// same processing effort by the gmeta system under study" (paper §3).  This
// module encodes that DTD — element nesting and attribute lists, including
// the GRID extension of §2.2 — and validates documents against it, so tests
// can hold every emitter in the system to the wire contract.
//
//   GANGLIA_XML (GRID | CLUSTER)*         VERSION SOURCE
//   GRID        (GRID | CLUSTER | HOSTS | METRICS)*
//                                         NAME AUTHORITY? LOCALTIME?
//   CLUSTER     (HOST | HOSTS | METRICS)* NAME LOCALTIME? OWNER? LATLONG? URL?
//   HOST        (METRIC)*                 NAME IP REPORTED TN? TMAX? DMAX?
//                                         LOCATION? GMOND_STARTED?
//   METRIC      EMPTY                     NAME VAL TYPE UNITS? TN? TMAX?
//                                         DMAX? SLOPE? SOURCE?
//   HOSTS       EMPTY                     UP DOWN
//   METRICS     EMPTY                     NAME SUM NUM TYPE? UNITS?
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ganglia::xml {

/// Validate a whole document against the Ganglia DTD.  On failure the
/// message names the offending element/attribute.  Strict mode also rejects
/// unknown attributes (by default they are tolerated, matching the
/// forward-compatible parser).
Status validate_ganglia_dtd(std::string_view document, bool strict = true);

/// The DTD source itself (shippable as ganglia.dtd).
std::string_view ganglia_dtd_text();

}  // namespace ganglia::xml
