// String-interning arena for the Ganglia report reader.
//
// A cluster report repeats the same handful of strings thousands of times:
// every host carries the same metric names, TYPE/UNITS/SOURCE values, and
// slope words.  The interner keeps one canonical std::string per distinct
// value; repeated occurrences cost a single hash probe (heterogeneous
// string_view lookup, no temporary allocation) and copies made from the
// canonical string never re-derive it from the document buffer.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

namespace ganglia::xml {

class StringInterner {
 public:
  /// Canonical copy of `s`; stable for the interner's lifetime.
  const std::string& intern(std::string_view s) {
    const auto it = set_.find(s);
    if (it != set_.end()) return *it;
    return *set_.emplace(s).first;
  }

  std::size_t size() const noexcept { return set_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  std::unordered_set<std::string, Hash, Eq> set_;
};

}  // namespace ganglia::xml
