#include "xml/writer.hpp"

#include <cassert>

#include "common/strings.hpp"
#include "xml/escape.hpp"

namespace ganglia::xml {

void XmlWriter::declaration() {
  out_ += "<?xml version=\"1.0\" encoding=\"ISO-8859-1\" standalone=\"yes\"?>";
  if (pretty_) out_ += '\n';
}

void XmlWriter::doctype(std::string_view root, std::string_view dtd) {
  out_ += "<!DOCTYPE ";
  out_ += root;
  out_ += " SYSTEM \"";
  out_ += dtd;
  out_ += "\">";
  if (pretty_) out_ += '\n';
}

void XmlWriter::indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void XmlWriter::seal_start_tag() {
  if (tag_open_) {
    out_ += '>';
    tag_open_ = false;
  }
}

void XmlWriter::open(std::string_view name) {
  seal_start_tag();
  if (!stack_.empty() || !out_.empty()) indent();
  out_ += '<';
  out_ += name;
  stack_.emplace_back(name);
  tag_open_ = true;
  has_child_ = false;
}

void XmlWriter::attr(std::string_view name, std::string_view value) {
  assert(tag_open_ && "attr() only valid immediately after open()");
  out_ += ' ';
  out_ += name;
  out_ += "=\"";
  escape_append(out_, value);
  out_ += '"';
}

void XmlWriter::attr(std::string_view name, std::int64_t value) {
  attr(name, std::string_view(std::to_string(value)));
}

void XmlWriter::attr(std::string_view name, std::uint64_t value) {
  attr(name, std::string_view(std::to_string(value)));
}

void XmlWriter::attr(std::string_view name, double value) {
  attr(name, std::string_view(format_double(value)));
}

void XmlWriter::close() {
  assert(!stack_.empty() && "close() without open()");
  const std::string name = std::move(stack_.back());
  stack_.pop_back();
  if (tag_open_) {
    out_ += "/>";
    tag_open_ = false;
  } else {
    if (has_child_) indent();
    out_ += "</";
    out_ += name;
    out_ += '>';
  }
  has_child_ = true;  // the parent now has at least one child
}

void XmlWriter::raw(std::string_view bytes) {
  if (bytes.empty()) return;
  seal_start_tag();
  out_ += bytes;
  has_child_ = true;
}

void XmlWriter::text(std::string_view content) {
  assert(!stack_.empty() && "text() outside any element");
  seal_start_tag();
  escape_append(out_, content);
  has_child_ = false;  // keep </name> adjacent to text in pretty mode
}

}  // namespace ganglia::xml
