#include "xml/sax.hpp"

#include <cctype>

#include "xml/escape.hpp"

namespace ganglia::xml {

namespace {

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool is_name_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}
bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool all_ws(std::string_view s) noexcept {
  for (char c : s) {
    if (!is_ws(c)) return false;
  }
  return true;
}

void skip_ws(std::string_view doc, std::size_t& i) noexcept {
  while (i < doc.size() && is_ws(doc[i])) ++i;
}

}  // namespace

Status SaxParser::fail(std::string_view doc, std::size_t pos, std::string msg) const {
  std::size_t line = 1;
  std::size_t col = 1;
  for (std::size_t i = 0; i < pos && i < doc.size(); ++i) {
    if (doc[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return Err(Errc::parse_error, msg + " at line " + std::to_string(line) +
                                    ", column " + std::to_string(col));
}

Status SaxParser::parse(std::string_view doc, SaxHandler& handler) {
  std::size_t i = 0;
  std::vector<std::string_view> open_stack;
  bool seen_root = false;

  auto flush_text = [&](std::size_t start, std::size_t end) -> Status {
    std::string_view raw = doc.substr(start, end - start);
    if (raw.empty() || all_ws(raw)) return {};
    if (open_stack.empty()) {
      return fail(doc, start, "character data outside the root element");
    }
    if (needs_unescape(raw)) {
      text_scratch_.clear();
      if (Status s = unescape_append(text_scratch_, raw); !s.ok()) {
        return fail(doc, start, s.error().message);
      }
      handler.on_text(text_scratch_);
    } else {
      handler.on_text(raw);
    }
    return {};
  };

  while (i < doc.size()) {
    const std::size_t text_start = i;
    while (i < doc.size() && doc[i] != '<') ++i;
    if (Status s = flush_text(text_start, i); !s.ok()) return s;
    if (i >= doc.size()) break;

    const std::size_t tag_pos = i;
    ++i;  // consume '<'
    if (i >= doc.size()) return fail(doc, tag_pos, "unterminated markup");

    // Comments, CDATA, DOCTYPE.
    if (doc[i] == '!') {
      if (doc.compare(i, 3, "!--") == 0) {
        const std::size_t end = doc.find("-->", i + 3);
        if (end == std::string_view::npos)
          return fail(doc, tag_pos, "unterminated comment");
        i = end + 3;
        continue;
      }
      if (doc.compare(i, 8, "![CDATA[") == 0) {
        const std::size_t start = i + 8;
        const std::size_t end = doc.find("]]>", start);
        if (end == std::string_view::npos)
          return fail(doc, tag_pos, "unterminated CDATA section");
        if (open_stack.empty())
          return fail(doc, tag_pos, "CDATA outside root element");
        std::string_view cdata = doc.substr(start, end - start);
        if (!cdata.empty()) handler.on_text(cdata);
        i = end + 3;
        continue;
      }
      // DOCTYPE or other declaration: skip to matching '>' (no internal
      // subset support: '[' ... ']' is skipped bracket-aware).
      int bracket_depth = 0;
      while (i < doc.size()) {
        if (doc[i] == '[') ++bracket_depth;
        else if (doc[i] == ']') --bracket_depth;
        else if (doc[i] == '>' && bracket_depth == 0) break;
        ++i;
      }
      if (i >= doc.size()) return fail(doc, tag_pos, "unterminated declaration");
      ++i;
      continue;
    }

    // XML declaration / processing instruction: skip.
    if (doc[i] == '?') {
      const std::size_t end = doc.find("?>", i + 1);
      if (end == std::string_view::npos)
        return fail(doc, tag_pos, "unterminated processing instruction");
      i = end + 2;
      continue;
    }

    // End tag.
    if (doc[i] == '/') {
      ++i;
      const std::size_t name_start = i;
      if (i >= doc.size() || !is_name_start(doc[i]))
        return fail(doc, tag_pos, "malformed end tag");
      while (i < doc.size() && is_name_char(doc[i])) ++i;
      const std::string_view name = doc.substr(name_start, i - name_start);
      skip_ws(doc, i);
      if (i >= doc.size() || doc[i] != '>')
        return fail(doc, tag_pos, "expected '>' in end tag");
      ++i;
      if (open_stack.empty())
        return fail(doc, tag_pos, "end tag </" + std::string(name) +
                                      "> without open element");
      if (open_stack.back() != name)
        return fail(doc, tag_pos,
                    "mismatched end tag </" + std::string(name) +
                        ">, expected </" + std::string(open_stack.back()) + ">");
      open_stack.pop_back();
      handler.on_end_element(name);
      continue;
    }

    // Start tag.
    if (!is_name_start(doc[i]))
      return fail(doc, tag_pos, "invalid character after '<'");
    if (open_stack.empty() && seen_root)
      return fail(doc, tag_pos, "multiple root elements");
    const std::size_t name_start = i;
    while (i < doc.size() && is_name_char(doc[i])) ++i;
    const std::string_view name = doc.substr(name_start, i - name_start);

    attrs_.clear();
    bool self_closing = false;
    for (;;) {
      skip_ws(doc, i);
      if (i >= doc.size()) return fail(doc, tag_pos, "unterminated start tag");
      if (doc[i] == '>') {
        ++i;
        break;
      }
      if (doc[i] == '/') {
        if (i + 1 >= doc.size() || doc[i + 1] != '>')
          return fail(doc, i, "expected '/>'");
        i += 2;
        self_closing = true;
        break;
      }
      // Attribute.
      if (!is_name_start(doc[i])) return fail(doc, i, "expected attribute name");
      const std::size_t attr_start = i;
      while (i < doc.size() && is_name_char(doc[i])) ++i;
      const std::string_view attr_name = doc.substr(attr_start, i - attr_start);
      skip_ws(doc, i);
      if (i >= doc.size() || doc[i] != '=')
        return fail(doc, i, "expected '=' after attribute name");
      ++i;
      skip_ws(doc, i);
      if (i >= doc.size() || (doc[i] != '"' && doc[i] != '\''))
        return fail(doc, i, "expected quoted attribute value");
      const char quote = doc[i];
      ++i;
      const std::size_t value_start = i;
      while (i < doc.size() && doc[i] != quote && doc[i] != '<') ++i;
      if (i >= doc.size() || doc[i] != quote)
        return fail(doc, value_start, "unterminated attribute value");
      std::string_view raw_value = doc.substr(value_start, i - value_start);
      ++i;  // consume closing quote
      std::string_view value = raw_value;
      if (needs_unescape(raw_value)) {
        std::string decoded;
        if (Status s = unescape_append(decoded, raw_value); !s.ok()) {
          return fail(doc, value_start, s.error().message);
        }
        attrs_.scratch_.push_back(std::move(decoded));
        value = attrs_.scratch_.back();
      }
      attrs_.attrs_.push_back(Attr{attr_name, value});
    }

    seen_root = true;
    handler.on_start_element(name, attrs_);
    if (self_closing) {
      handler.on_end_element(name);
    } else {
      open_stack.push_back(name);
    }
  }

  if (!open_stack.empty()) {
    return fail(doc, doc.size(),
                "unexpected end of document; <" + std::string(open_stack.back()) +
                    "> not closed");
  }
  if (!seen_root) return fail(doc, doc.size(), "no root element");
  return {};
}

}  // namespace ganglia::xml
