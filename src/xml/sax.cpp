#include "xml/sax.hpp"

#include <algorithm>
#include <array>

#include "xml/escape.hpp"

namespace ganglia::xml {

namespace {

// Table-driven character classes: one 256-entry flag table replaces the
// per-character isalpha/isalnum calls in the scanning loops (which are the
// parser's hottest instructions).  ASCII-only by construction — the Ganglia
// dialect's names are ASCII, and std::isalpha in the "C" locale agreed.
enum : unsigned char {
  kWs = 1,
  kNameStart = 2,
  kNameChar = 4,
};

constexpr std::array<unsigned char, 256> make_char_table() {
  std::array<unsigned char, 256> table{};
  for (int c = 0; c < 256; ++c) {
    unsigned char flags = 0;
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') flags |= kWs;
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':') flags |= kNameStart | kNameChar;
    if (digit || c == '-' || c == '.') flags |= kNameChar;
    table[static_cast<std::size_t>(c)] = flags;
  }
  return table;
}

constexpr std::array<unsigned char, 256> kCharTable = make_char_table();

inline unsigned char char_class(char c) noexcept {
  return kCharTable[static_cast<unsigned char>(c)];
}
inline bool is_name_start(char c) noexcept { return char_class(c) & kNameStart; }
inline bool is_name_char(char c) noexcept { return char_class(c) & kNameChar; }
inline bool is_ws(char c) noexcept { return char_class(c) & kWs; }

bool all_ws(std::string_view s) noexcept {
  for (char c : s) {
    if (!is_ws(c)) return false;
  }
  return true;
}

void skip_ws(std::string_view doc, std::size_t& i) noexcept {
  while (i < doc.size() && is_ws(doc[i])) ++i;
}

}  // namespace

Status SaxParser::fail(std::string_view doc, std::size_t pos,
                       std::string msg) const {
  // Lazy, memoised line/column: resume the newline count from the last
  // computed position (reset per parse) instead of rescanning the whole
  // document on every failure.  The newline scan itself is memchr-backed.
  pos = std::min(pos, doc.size());
  if (pos < memo_pos_) {
    memo_pos_ = 0;
    memo_line_ = 1;
    memo_col_ = 1;
  }
  std::size_t i = memo_pos_;
  std::size_t line = memo_line_;
  std::size_t col = memo_col_;
  for (;;) {
    const std::size_t nl = doc.find('\n', i);
    if (nl == std::string_view::npos || nl >= pos) {
      col += pos - i;
      break;
    }
    ++line;
    col = 1;
    i = nl + 1;
  }
  memo_pos_ = pos;
  memo_line_ = line;
  memo_col_ = col;
  return Err(Errc::parse_error, msg + " at line " + std::to_string(line) +
                                    ", column " + std::to_string(col));
}

Status SaxParser::parse(std::string_view doc, SaxHandler& handler) {
  std::size_t i = 0;
  std::vector<std::string_view> open_stack;
  bool seen_root = false;
  memo_pos_ = 0;
  memo_line_ = 1;
  memo_col_ = 1;

  auto flush_text = [&](std::size_t start, std::size_t end) -> Status {
    std::string_view raw = doc.substr(start, end - start);
    if (raw.empty() || all_ws(raw)) return {};
    if (open_stack.empty()) {
      return fail(doc, start, "character data outside the root element");
    }
    if (needs_unescape(raw)) {
      text_scratch_.clear();
      if (Status s = unescape_append(text_scratch_, raw); !s.ok()) {
        return fail(doc, start, s.error().message);
      }
      handler.on_text(text_scratch_);
    } else {
      handler.on_text(raw);
    }
    return {};
  };

  while (i < doc.size()) {
    // memchr-backed skip to the next markup boundary.
    const std::size_t text_start = i;
    i = std::min(doc.find('<', i), doc.size());
    if (Status s = flush_text(text_start, i); !s.ok()) return s;
    if (i >= doc.size()) break;

    const std::size_t tag_pos = i;
    ++i;  // consume '<'
    if (i >= doc.size()) return fail(doc, tag_pos, "unterminated markup");

    // Comments, CDATA, DOCTYPE.
    if (doc[i] == '!') {
      if (doc.compare(i, 3, "!--") == 0) {
        const std::size_t end = doc.find("-->", i + 3);
        if (end == std::string_view::npos)
          return fail(doc, tag_pos, "unterminated comment");
        i = end + 3;
        continue;
      }
      if (doc.compare(i, 8, "![CDATA[") == 0) {
        const std::size_t start = i + 8;
        const std::size_t end = doc.find("]]>", start);
        if (end == std::string_view::npos)
          return fail(doc, tag_pos, "unterminated CDATA section");
        if (open_stack.empty())
          return fail(doc, tag_pos, "CDATA outside root element");
        std::string_view cdata = doc.substr(start, end - start);
        if (!cdata.empty()) handler.on_text(cdata);
        i = end + 3;
        continue;
      }
      // DOCTYPE or other declaration: skip to matching '>' (no internal
      // subset support: '[' ... ']' is skipped bracket-aware).
      int bracket_depth = 0;
      while (i < doc.size()) {
        if (doc[i] == '[') ++bracket_depth;
        else if (doc[i] == ']') --bracket_depth;
        else if (doc[i] == '>' && bracket_depth == 0) break;
        ++i;
      }
      if (i >= doc.size()) return fail(doc, tag_pos, "unterminated declaration");
      ++i;
      continue;
    }

    // XML declaration / processing instruction: skip.
    if (doc[i] == '?') {
      const std::size_t end = doc.find("?>", i + 1);
      if (end == std::string_view::npos)
        return fail(doc, tag_pos, "unterminated processing instruction");
      i = end + 2;
      continue;
    }

    // End tag.
    if (doc[i] == '/') {
      ++i;
      const std::size_t name_start = i;
      if (i >= doc.size() || !is_name_start(doc[i]))
        return fail(doc, tag_pos, "malformed end tag");
      while (i < doc.size() && is_name_char(doc[i])) ++i;
      const std::string_view name = doc.substr(name_start, i - name_start);
      skip_ws(doc, i);
      if (i >= doc.size() || doc[i] != '>')
        return fail(doc, tag_pos, "expected '>' in end tag");
      ++i;
      if (open_stack.empty())
        return fail(doc, tag_pos, "end tag </" + std::string(name) +
                                      "> without open element");
      if (open_stack.back() != name)
        return fail(doc, tag_pos,
                    "mismatched end tag </" + std::string(name) +
                        ">, expected </" + std::string(open_stack.back()) + ">");
      open_stack.pop_back();
      handler.on_end_element(name);
      continue;
    }

    // Start tag.
    if (!is_name_start(doc[i]))
      return fail(doc, tag_pos, "invalid character after '<'");
    if (open_stack.empty() && seen_root)
      return fail(doc, tag_pos, "multiple root elements");
    const std::size_t name_start = i;
    while (i < doc.size() && is_name_char(doc[i])) ++i;
    const std::string_view name = doc.substr(name_start, i - name_start);

    attrs_.clear();
    bool self_closing = false;
    for (;;) {
      skip_ws(doc, i);
      if (i >= doc.size()) return fail(doc, tag_pos, "unterminated start tag");
      if (doc[i] == '>') {
        ++i;
        break;
      }
      if (doc[i] == '/') {
        if (i + 1 >= doc.size() || doc[i + 1] != '>')
          return fail(doc, i, "expected '/>'");
        i += 2;
        self_closing = true;
        break;
      }
      // Attribute.
      if (!is_name_start(doc[i])) return fail(doc, i, "expected attribute name");
      const std::size_t attr_start = i;
      while (i < doc.size() && is_name_char(doc[i])) ++i;
      const std::string_view attr_name = doc.substr(attr_start, i - attr_start);
      skip_ws(doc, i);
      if (i >= doc.size() || doc[i] != '=')
        return fail(doc, i, "expected '=' after attribute name");
      ++i;
      skip_ws(doc, i);
      if (i >= doc.size() || (doc[i] != '"' && doc[i] != '\''))
        return fail(doc, i, "expected quoted attribute value");
      const char quote = doc[i];
      ++i;
      // memchr for the closing quote, then reject any '<' before it (the
      // same malformed input the old per-character scan stopped on).
      const std::size_t value_start = i;
      const std::size_t quote_pos = doc.find(quote, value_start);
      std::string_view raw_value =
          doc.substr(value_start, std::min(quote_pos, doc.size()) - value_start);
      if (quote_pos == std::string_view::npos ||
          raw_value.find('<') != std::string_view::npos)
        return fail(doc, value_start, "unterminated attribute value");
      i = quote_pos + 1;  // consume closing quote
      std::string_view value = raw_value;
      if (needs_unescape(raw_value)) {
        std::string decoded;
        if (Status s = unescape_append(decoded, raw_value); !s.ok()) {
          return fail(doc, value_start, s.error().message);
        }
        attrs_.scratch_.push_back(std::move(decoded));
        value = attrs_.scratch_.back();
      }
      attrs_.attrs_.push_back(Attr{attr_name, value});
    }

    seen_root = true;
    handler.on_start_element(name, attrs_);
    if (self_closing) {
      handler.on_end_element(name);
    } else {
      open_stack.push_back(name);
    }
  }

  if (!open_stack.empty()) {
    return fail(doc, doc.size(),
                "unexpected end of document; <" + std::string(open_stack.back()) +
                    "> not closed");
  }
  if (!seen_root) return fail(doc, doc.size(), "no root element");
  return {};
}

}  // namespace ganglia::xml
