#include "xml/dom.hpp"

#include "xml/sax.hpp"

namespace ganglia::xml {

std::string_view DomNode::attr(std::string_view attr_name,
                               std::string_view fallback) const noexcept {
  for (const auto& [k, v] : attributes) {
    if (k == attr_name) return v;
  }
  return fallback;
}

const DomNode* DomNode::child(std::string_view child_name) const noexcept {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const DomNode*> DomNode::children_named(
    std::string_view child_name) const {
  std::vector<const DomNode*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

const DomNode* DomNode::find_named(
    std::string_view element, std::string_view name_attr_value) const noexcept {
  if (name == element && attr("NAME") == name_attr_value) return this;
  for (const auto& c : children) {
    if (const DomNode* hit = c->find_named(element, name_attr_value)) return hit;
  }
  return nullptr;
}

std::size_t DomNode::subtree_size() const noexcept {
  std::size_t n = 1;
  for (const auto& c : children) n += c->subtree_size();
  return n;
}

namespace {

class DomBuilder final : public SaxHandler {
 public:
  void on_start_element(std::string_view name, const AttrList& attrs) override {
    auto node = std::make_unique<DomNode>();
    node->name = std::string(name);
    node->attributes.reserve(attrs.size());
    for (const Attr& a : attrs) {
      node->attributes.emplace_back(std::string(a.name), std::string(a.value));
    }
    DomNode* raw = node.get();
    if (stack_.empty()) {
      root_ = std::move(node);
    } else {
      stack_.back()->children.push_back(std::move(node));
    }
    stack_.push_back(raw);
  }

  void on_end_element(std::string_view) override { stack_.pop_back(); }

  void on_text(std::string_view text) override {
    if (!stack_.empty()) stack_.back()->text += text;
  }

  std::unique_ptr<DomNode> take_root() { return std::move(root_); }

 private:
  std::unique_ptr<DomNode> root_;
  std::vector<DomNode*> stack_;
};

}  // namespace

Result<std::unique_ptr<DomNode>> parse_dom(std::string_view doc) {
  DomBuilder builder;
  SaxParser parser;
  if (Status s = parser.parse(doc, builder); !s.ok()) return s.error();
  return builder.take_root();
}

}  // namespace ganglia::xml
