// SAX-style XML parser.
//
// This parser is in the measured path of the paper's Table 1 experiment (the
// web frontend's download+parse time) and of every gmetad poll round, so it
// is written as a single zero-copy pass: callbacks receive string_views into
// the input buffer except where entity decoding forces a copy.  The whole
// document is required in memory, which matches the paper's observation that
// reports are "<1MB in all cases".
//
// Supported: declarations, DOCTYPE (skipped), comments, CDATA, the five
// predefined entities plus numeric character references, self-closing tags,
// and attribute values in single or double quotes.  Not supported (not used
// by the Ganglia dialect): processing instructions targeted at applications,
// namespaces, internal DTD subsets with entity definitions.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ganglia::xml {

/// One attribute.  `value` points either into the document (common case) or
/// into parser-owned scratch storage when decoding was required; it is valid
/// only for the duration of the on_start_element callback.
struct Attr {
  std::string_view name;
  std::string_view value;
};

/// Attribute list passed to on_start_element.
class AttrList {
 public:
  std::size_t size() const noexcept { return attrs_.size(); }
  const Attr& operator[](std::size_t i) const { return attrs_[i]; }
  auto begin() const noexcept { return attrs_.begin(); }
  auto end() const noexcept { return attrs_.end(); }

  /// Value of the named attribute, or `fallback` when absent.
  std::string_view get(std::string_view name,
                       std::string_view fallback = {}) const noexcept {
    for (const Attr& a : attrs_) {
      if (a.name == name) return a.value;
    }
    return fallback;
  }

  bool has(std::string_view name) const noexcept {
    for (const Attr& a : attrs_) {
      if (a.name == name) return true;
    }
    return false;
  }

 private:
  friend class SaxParser;
  void clear() {
    attrs_.clear();
    scratch_.clear();
  }
  std::vector<Attr> attrs_;
  // Deque: decoded values must stay pointer-stable while more are added,
  // because earlier Attr::value views point into them.
  std::deque<std::string> scratch_;
};

/// Callback interface.  Views are valid only during the call.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;
  virtual void on_start_element(std::string_view name, const AttrList& attrs) {
    (void)name;
    (void)attrs;
  }
  virtual void on_end_element(std::string_view name) { (void)name; }
  /// Character data (entity-decoded).  Whitespace-only runs are suppressed.
  virtual void on_text(std::string_view text) { (void)text; }
};

/// Parser.  Stateless between documents; reuse one instance to amortise the
/// attribute-list allocation across many parses (gmetad does).
class SaxParser {
 public:
  /// Parse a complete document, invoking handler callbacks.  On failure the
  /// error message includes 1-based line/column.
  Status parse(std::string_view doc, SaxHandler& handler);

 private:
  Status fail(std::string_view doc, std::size_t pos, std::string msg) const;

  AttrList attrs_;
  std::string text_scratch_;
  // Memoised line/column scan for fail(): successive failures resume the
  // newline count from the last reported position instead of rescanning
  // the document from the top.  Reset at the start of every parse().
  mutable std::size_t memo_pos_ = 0;
  mutable std::size_t memo_line_ = 1;
  mutable std::size_t memo_col_ = 1;
};

}  // namespace ganglia::xml
