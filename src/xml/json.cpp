#include "xml/json.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace ganglia::xml {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", static_cast<unsigned>(c) & 0xff);
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (first_.empty()) return;  // top-level value
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

void JsonWriter::begin_object() {
  separator();
  out_ += '{';
  first_.push_back(true);
}

void JsonWriter::end_object() {
  first_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  separator();
  out_ += '[';
  first_.push_back(true);
}

void JsonWriter::end_array() {
  first_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  separator();
  out_ += '"';
  append_json_escaped(out_, name);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separator();
  out_ += '"';
  append_json_escaped(out_, s);
  out_ += '"';
}

void JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    out_ += format_double(v);
  }
}

void JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  separator();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  separator();
  out_ += "null";
}

void JsonWriter::raw(std::string_view bytes) {
  if (bytes.empty()) return;
  separator();
  out_ += bytes;
}

}  // namespace ganglia::xml
