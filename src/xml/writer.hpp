// Streaming XML writer.
//
// Gmon and gmetad serialise monitoring reports with this writer; it appends
// to a caller-owned string so a server can build a report directly into its
// send buffer.  Elements are closed automatically as `/>` when empty.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ganglia::xml {

class XmlWriter {
 public:
  /// pretty=true inserts newlines + two-space indentation (for humans and
  /// golden tests); production reports are written compact.
  explicit XmlWriter(std::string& out, bool pretty = false)
      : out_(out), pretty_(pretty) {}

  XmlWriter(const XmlWriter&) = delete;
  XmlWriter& operator=(const XmlWriter&) = delete;

  /// <?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>
  /// (the header real gmond emits).
  void declaration();

  /// <!DOCTYPE root SYSTEM "dtd"> — Ganglia ships a DTD reference.
  void doctype(std::string_view root, std::string_view dtd);

  /// Begin <name ...; attributes may follow until a child/text/close.
  void open(std::string_view name);

  /// Attribute on the most recently opened element.  Value is escaped.
  void attr(std::string_view name, std::string_view value);
  void attr(std::string_view name, std::int64_t value);
  void attr(std::string_view name, std::uint64_t value);
  void attr(std::string_view name, double value);

  /// Close the innermost open element (self-closing when empty).
  void close();

  /// Escaped character data inside the current element.
  void text(std::string_view content);

  /// Splice pre-serialized, pre-escaped element bytes as children of the
  /// current element.  The render pipeline uses this to compose full-tree
  /// responses from publish-time snapshot fragments without re-walking (or
  /// re-escaping) the subtree.  `bytes` must be well-formed element markup
  /// produced by a compact (non-pretty) writer; an empty fragment is a
  /// no-op, so an element with only empty splices still self-closes.
  void raw(std::string_view bytes);

  /// Number of currently open elements.
  std::size_t depth() const noexcept { return stack_.size(); }

 private:
  void seal_start_tag();
  void indent();

  std::string& out_;
  std::vector<std::string> stack_;
  bool pretty_;
  bool tag_open_ = false;   ///< start tag written but '>' not yet emitted
  bool has_child_ = false;  ///< current element has children/text
};

}  // namespace ganglia::xml
