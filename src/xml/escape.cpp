#include "xml/escape.hpp"

#include <cstdint>

#include "common/strings.hpp"

namespace ganglia::xml {

void escape_append(std::string& out, std::string_view raw) {
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c; break;
    }
  }
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  escape_append(out, raw);
  return out;
}

namespace {

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

Status unescape_append(std::string& out, std::string_view raw) {
  std::size_t i = 0;
  while (i < raw.size()) {
    const char c = raw[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    const std::size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Err(Errc::parse_error, "unterminated entity reference");
    }
    const std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity.front() == '#') {
      std::string_view digits = entity.substr(1);
      std::uint32_t cp = 0;
      bool ok = !digits.empty();
      if (!digits.empty() && (digits.front() == 'x' || digits.front() == 'X')) {
        digits = digits.substr(1);
        ok = !digits.empty();
        for (char d : digits) {
          std::uint32_t v;
          if (d >= '0' && d <= '9') v = static_cast<std::uint32_t>(d - '0');
          else if (d >= 'a' && d <= 'f') v = static_cast<std::uint32_t>(d - 'a' + 10);
          else if (d >= 'A' && d <= 'F') v = static_cast<std::uint32_t>(d - 'A' + 10);
          else { ok = false; break; }
          cp = cp * 16 + v;
          if (cp > 0x10FFFF) { ok = false; break; }
        }
      } else {
        for (char d : digits) {
          if (d < '0' || d > '9') { ok = false; break; }
          cp = cp * 10 + static_cast<std::uint32_t>(d - '0');
          if (cp > 0x10FFFF) { ok = false; break; }
        }
      }
      if (!ok) {
        return Err(Errc::parse_error,
                   "bad numeric character reference: &" + std::string(entity) + ";");
      }
      append_utf8(out, cp);
    } else {
      return Err(Errc::parse_error,
                 "unknown entity: &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return {};
}

}  // namespace ganglia::xml
