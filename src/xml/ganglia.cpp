#include "xml/ganglia.hpp"

#include <charconv>
#include <cmath>
#include <optional>

#include "common/strings.hpp"
#include "xml/intern.hpp"
#include "xml/sax.hpp"
#include "xml/writer.hpp"

namespace ganglia {

// ---------------------------------------------------------------- metrics

std::string_view metric_type_name(MetricType t) noexcept {
  switch (t) {
    case MetricType::string_t: return "string";
    case MetricType::int8: return "int8";
    case MetricType::uint8: return "uint8";
    case MetricType::int16: return "int16";
    case MetricType::uint16: return "uint16";
    case MetricType::int32: return "int32";
    case MetricType::uint32: return "uint32";
    case MetricType::float_t: return "float";
    case MetricType::double_t: return "double";
    case MetricType::timestamp: return "timestamp";
  }
  return "string";
}

std::optional<MetricType> metric_type_from_name(std::string_view s) noexcept {
  if (s == "string") return MetricType::string_t;
  if (s == "int8") return MetricType::int8;
  if (s == "uint8") return MetricType::uint8;
  if (s == "int16") return MetricType::int16;
  if (s == "uint16") return MetricType::uint16;
  if (s == "int32" || s == "int") return MetricType::int32;
  if (s == "uint32" || s == "uint") return MetricType::uint32;
  if (s == "float") return MetricType::float_t;
  if (s == "double") return MetricType::double_t;
  if (s == "timestamp") return MetricType::timestamp;
  return std::nullopt;
}

std::string_view slope_name(Slope s) noexcept {
  switch (s) {
    case Slope::zero: return "zero";
    case Slope::positive: return "positive";
    case Slope::negative: return "negative";
    case Slope::both: return "both";
    case Slope::unspecified: return "unspecified";
  }
  return "both";
}

std::optional<Slope> slope_from_name(std::string_view s) noexcept {
  if (s == "zero") return Slope::zero;
  if (s == "positive") return Slope::positive;
  if (s == "negative") return Slope::negative;
  if (s == "both") return Slope::both;
  if (s == "unspecified") return Slope::unspecified;
  return std::nullopt;
}

void Metric::set_double(double v) {
  type = MetricType::double_t;
  numeric = v;
  value = format_double(v);
}

void Metric::set_int(std::int64_t v, MetricType t) {
  type = t;
  numeric = static_cast<double>(v);
  value = std::to_string(v);
}

void Metric::set_uint(std::uint64_t v, MetricType t) {
  type = t;
  numeric = static_cast<double>(v);
  value = std::to_string(v);
}

void Metric::set_string(std::string v) {
  type = MetricType::string_t;
  numeric = 0.0;
  value = std::move(v);
}

// ------------------------------------------------------------------ hosts

const Metric* Host::find_metric(std::string_view metric_name) const noexcept {
  for (const Metric& m : metrics) {
    if (m.name == metric_name) return &m;
  }
  return nullptr;
}

Metric* Host::find_metric(std::string_view metric_name) noexcept {
  for (Metric& m : metrics) {
    if (m.name == metric_name) return &m;
  }
  return nullptr;
}

// -------------------------------------------------------------- summaries

void SummaryInfo::add_host(const Host& host) {
  if (host.is_up()) {
    ++hosts_up;
  } else {
    ++hosts_down;
    return;  // down hosts contribute no metric values
  }
  for (const Metric& m : host.metrics) {
    if (!m.is_numeric()) continue;
    MetricSummary& s = metrics[m.name];
    if (s.num == 0) {
      s.type = m.type;
      s.units = m.units;
    }
    s.sum += m.numeric;
    ++s.num;
  }
}

void SummaryInfo::merge(const SummaryInfo& other) {
  hosts_up += other.hosts_up;
  hosts_down += other.hosts_down;
  for (const auto& [name, os] : other.metrics) {
    MetricSummary& s = metrics[name];
    if (s.num == 0) {
      s.type = os.type;
      s.units = os.units;
    }
    s.sum += os.sum;
    s.num += os.num;
  }
}

// --------------------------------------------------------- clusters/grids

SummaryInfo Cluster::summarize() const {
  if (summary) return *summary;
  SummaryInfo out;
  for (const auto& [host_name, host] : hosts) {
    (void)host_name;
    out.add_host(host);
  }
  return out;
}

SummaryInfo Grid::summarize() const {
  if (summary) return *summary;
  SummaryInfo out;
  for (const Cluster& c : clusters) out.merge(c.summarize());
  for (const Grid& g : grids) out.merge(g.summarize());
  return out;
}

std::size_t Grid::cluster_count() const noexcept {
  std::size_t n = clusters.size();
  for (const Grid& g : grids) n += g.cluster_count();
  return n;
}

std::size_t Grid::host_count() const noexcept {
  std::size_t n = 0;
  for (const Cluster& c : clusters) n += c.hosts.size();
  for (const Grid& g : grids) n += g.host_count();
  return n;
}

// ---------------------------------------------------------------- writing

void write_metric(xml::XmlWriter& w, const Metric& metric) {
  w.open("METRIC");
  w.attr("NAME", metric.name);
  w.attr("VAL", metric.value);
  w.attr("TYPE", metric_type_name(metric.type));
  w.attr("UNITS", metric.units);
  w.attr("TN", static_cast<std::uint64_t>(metric.tn));
  w.attr("TMAX", static_cast<std::uint64_t>(metric.tmax));
  w.attr("DMAX", static_cast<std::uint64_t>(metric.dmax));
  w.attr("SLOPE", slope_name(metric.slope));
  w.attr("SOURCE", metric.source);
  w.close();
}

void write_host_attrs(xml::XmlWriter& w, const Host& host) {
  w.attr("NAME", host.name);
  w.attr("IP", host.ip);
  w.attr("REPORTED", host.reported);
  w.attr("TN", static_cast<std::uint64_t>(host.tn));
  w.attr("TMAX", static_cast<std::uint64_t>(host.tmax));
  w.attr("DMAX", static_cast<std::uint64_t>(host.dmax));
  if (!host.location.empty()) w.attr("LOCATION", host.location);
  w.attr("GMOND_STARTED", host.gmond_started);
}

void write_host(xml::XmlWriter& w, const Host& host) {
  w.open("HOST");
  write_host_attrs(w, host);
  for (const Metric& m : host.metrics) write_metric(w, m);
  w.close();
}

void write_summary_info(xml::XmlWriter& w, const SummaryInfo& summary) {
  w.open("HOSTS");
  w.attr("UP", static_cast<std::uint64_t>(summary.hosts_up));
  w.attr("DOWN", static_cast<std::uint64_t>(summary.hosts_down));
  w.close();
  for (const auto& [name, ms] : summary.metrics) {
    w.open("METRICS");
    w.attr("NAME", name);
    w.attr("SUM", ms.sum);
    w.attr("NUM", ms.num);
    w.attr("TYPE", metric_type_name(ms.type));
    if (!ms.units.empty()) w.attr("UNITS", ms.units);
    w.close();
  }
}

void write_cluster_attrs(xml::XmlWriter& w, const Cluster& cluster) {
  w.attr("NAME", cluster.name);
  w.attr("LOCALTIME", cluster.localtime);
  if (!cluster.owner.empty()) w.attr("OWNER", cluster.owner);
  if (!cluster.latlong.empty()) w.attr("LATLONG", cluster.latlong);
  if (!cluster.url.empty()) w.attr("URL", cluster.url);
}

void write_grid_attrs(xml::XmlWriter& w, const Grid& grid) {
  w.attr("NAME", grid.name);
  w.attr("AUTHORITY", grid.authority);
  w.attr("LOCALTIME", grid.localtime);
}

void write_cluster(xml::XmlWriter& w, const Cluster& cluster) {
  w.open("CLUSTER");
  write_cluster_attrs(w, cluster);
  if (cluster.summary) {
    write_summary_info(w, *cluster.summary);
  } else {
    for (const auto& [name, host] : cluster.hosts) {
      (void)name;
      write_host(w, host);
    }
  }
  w.close();
}

void write_cluster_summary(xml::XmlWriter& w, const Cluster& cluster) {
  w.open("CLUSTER");
  write_cluster_attrs(w, cluster);
  write_summary_info(w, cluster.summarize());
  w.close();
}

void write_grid(xml::XmlWriter& w, const Grid& grid) {
  w.open("GRID");
  write_grid_attrs(w, grid);
  if (grid.summary) {
    write_summary_info(w, *grid.summary);
  } else {
    for (const Cluster& c : grid.clusters) write_cluster(w, c);
    for (const Grid& g : grid.grids) write_grid(w, g);
  }
  w.close();
}

std::string write_report(const Report& report, const WriteOptions& opts) {
  std::string out;
  xml::XmlWriter w(out, opts.pretty);
  if (opts.with_declaration) w.declaration();
  if (opts.with_doctype) w.doctype("GANGLIA_XML", "ganglia.dtd");
  w.open("GANGLIA_XML");
  w.attr("VERSION", report.version);
  w.attr("SOURCE", report.source);
  for (const Cluster& c : report.clusters) write_cluster(w, c);
  for (const Grid& g : report.grids) write_grid(w, g);
  w.close();
  return out;
}

// ---------------------------------------------------------------- parsing

namespace {

// -- fast attribute numerics ------------------------------------------------
//
// Attribute values arrive as exact string_views into the document, so the
// common case parses with a single std::from_chars call and no trimming
// pass.  Anything from_chars cannot fully consume (stray whitespace, an
// out-of-range digit string) retries through the tolerant trimming parser,
// preserving the old fallback semantics bit-for-bit.

std::uint32_t fast_u32(std::string_view s, std::uint32_t fallback) noexcept {
  std::uint32_t v = 0;
  const char* last = s.data() + s.size();
  const auto [p, ec] = std::from_chars(s.data(), last, v);
  if (ec == std::errc() && p == last) return v;
  const auto parsed = parse_u64(s);
  return parsed ? static_cast<std::uint32_t>(*parsed) : fallback;
}

std::int64_t fast_i64(std::string_view s, std::int64_t fallback) noexcept {
  std::int64_t v = 0;
  const char* last = s.data() + s.size();
  const auto [p, ec] = std::from_chars(s.data(), last, v);
  if (ec == std::errc() && p == last) return v;
  return parse_i64(s).value_or(fallback);
}

/// Builds a Report from SAX events.  GRID elements nest; CLUSTER elements
/// appear under GANGLIA_XML (gmond reports) or under GRID (gmetad reports).
///
/// Attribute handling is a single pass per element: one loop over the
/// AttrList dispatching on the attribute's first character, instead of one
/// O(n) AttrList::get scan per wanted attribute (a METRIC wants nine of
/// them).  Repeated strings — metric names, units, sources — go through a
/// StringInterner so each distinct value is materialised once.
class ReportBuilder final : public xml::SaxHandler {
 public:
  void on_start_element(std::string_view name,
                        const xml::AttrList& attrs) override {
    if (!error_.empty()) return;
    // Hot path first: a 128-host report is ~30 METRICs per HOST.
    if (name == "METRIC") {
      if (host_ == nullptr) return set_error("METRIC outside HOST");
      Metric m;
      std::string_view type_name = "string";
      std::string_view slope = "both";
      m.tmax = 60;
      for (const xml::Attr& a : attrs) {
        switch (a.name[0]) {
          case 'N':
            if (a.name == "NAME") m.name = interner_.intern(a.value);
            break;
          case 'V':
            if (a.name == "VAL") m.value.assign(a.value);
            break;
          case 'T':
            if (a.name.size() == 2 && a.name[1] == 'N') {
              m.tn = fast_u32(a.value, 0);
            } else if (a.name == "TYPE") {
              type_name = a.value;
            } else if (a.name == "TMAX") {
              m.tmax = fast_u32(a.value, 60);
            }
            break;
          case 'U':
            if (a.name == "UNITS") m.units = interner_.intern(a.value);
            break;
          case 'D':
            if (a.name == "DMAX") m.dmax = fast_u32(a.value, 0);
            break;
          case 'S':
            if (a.name == "SLOPE") {
              slope = a.value;
            } else if (a.name == "SOURCE") {
              m.source = interner_.intern(a.value);
            }
            break;
          default:
            break;
        }
      }
      if (m.name.empty()) return set_error("METRIC missing NAME");
      m.type = metric_type_from_name(type_name).value_or(MetricType::string_t);
      if (m.is_numeric()) {
        auto num = parse_double(m.value);
        if (!num)
          return set_error("non-numeric VAL '" + m.value +
                           "' for numeric metric " + m.name);
        m.numeric = *num;
      }
      m.slope = slope_from_name(slope).value_or(Slope::both);
      host_->metrics.push_back(std::move(m));
    } else if (name == "HOST") {
      if (cluster_ == nullptr) return set_error("HOST outside CLUSTER");
      Host host;
      host.tmax = 20;
      for (const xml::Attr& a : attrs) {
        switch (a.name[0]) {
          case 'N':
            if (a.name == "NAME") host.name.assign(a.value);
            break;
          case 'I':
            if (a.name == "IP") host.ip.assign(a.value);
            break;
          case 'R':
            if (a.name == "REPORTED") host.reported = fast_i64(a.value, 0);
            break;
          case 'T':
            if (a.name.size() == 2 && a.name[1] == 'N') {
              host.tn = fast_u32(a.value, 0);
            } else if (a.name == "TMAX") {
              host.tmax = fast_u32(a.value, 20);
            }
            break;
          case 'D':
            if (a.name == "DMAX") host.dmax = fast_u32(a.value, 0);
            break;
          case 'L':
            if (a.name == "LOCATION") host.location.assign(a.value);
            break;
          case 'G':
            if (a.name == "GMOND_STARTED")
              host.gmond_started = fast_i64(a.value, 0);
            break;
          default:
            break;
        }
      }
      if (host.name.empty()) return set_error("HOST missing NAME");
      std::string key = host.name;
      auto [it, inserted] =
          cluster_->hosts.insert_or_assign(std::move(key), std::move(host));
      (void)inserted;  // duplicate HOST: last report wins
      host_ = &it->second;
    } else if (name == "METRICS") {
      SummaryInfo* summary = current_summary();
      if (summary == nullptr) return set_error("METRICS outside GRID/CLUSTER");
      std::string_view metric_name;
      std::string_view type_name = "double";
      std::optional<double> sum;
      std::optional<std::uint64_t> num;
      MetricSummary ms;
      for (const xml::Attr& a : attrs) {
        switch (a.name[0]) {
          case 'N':
            if (a.name == "NAME") {
              metric_name = a.value;
            } else if (a.name == "NUM") {
              num = parse_u64(a.value);
            }
            break;
          case 'S':
            if (a.name == "SUM") sum = parse_double(a.value);
            break;
          case 'T':
            if (a.name == "TYPE") type_name = a.value;
            break;
          case 'U':
            if (a.name == "UNITS") ms.units = interner_.intern(a.value);
            break;
          default:
            break;
        }
      }
      if (metric_name.empty()) return set_error("METRICS missing NAME");
      if (!sum || !num)
        return set_error("METRICS " + std::string(metric_name) +
                         " has malformed SUM/NUM");
      ms.sum = *sum;
      ms.num = *num;
      ms.type = metric_type_from_name(type_name).value_or(MetricType::double_t);
      summary->metrics[interner_.intern(metric_name)] = std::move(ms);
    } else if (name == "HOSTS") {
      SummaryInfo* summary = current_summary();
      if (summary == nullptr) return set_error("HOSTS outside GRID/CLUSTER");
      for (const xml::Attr& a : attrs) {
        if (a.name == "UP") {
          summary->hosts_up = fast_u32(a.value, 0);
        } else if (a.name == "DOWN") {
          summary->hosts_down = fast_u32(a.value, 0);
        }
      }
    } else if (name == "CLUSTER") {
      if (!in_report_ || cluster_ != nullptr)
        return set_error("CLUSTER in invalid position");
      Cluster cluster;
      for (const xml::Attr& a : attrs) {
        switch (a.name[0]) {
          case 'N':
            if (a.name == "NAME") cluster.name.assign(a.value);
            break;
          case 'O':
            if (a.name == "OWNER") cluster.owner.assign(a.value);
            break;
          case 'L':
            if (a.name == "LATLONG") {
              cluster.latlong.assign(a.value);
            } else if (a.name == "LOCALTIME") {
              cluster.localtime = fast_i64(a.value, 0);
            }
            break;
          case 'U':
            if (a.name == "URL") cluster.url.assign(a.value);
            break;
          default:
            break;
        }
      }
      if (cluster.name.empty()) return set_error("CLUSTER missing NAME");
      auto& siblings = grid_stack_.empty() ? report_.clusters
                                           : grid_stack_.back()->clusters;
      siblings.push_back(std::move(cluster));
      cluster_ = &siblings.back();
    } else if (name == "GRID") {
      if (!in_report_ || cluster_ != nullptr)
        return set_error("GRID in invalid position");
      Grid grid;
      for (const xml::Attr& a : attrs) {
        if (a.name == "NAME") {
          grid.name.assign(a.value);
        } else if (a.name == "AUTHORITY") {
          grid.authority.assign(a.value);
        } else if (a.name == "LOCALTIME") {
          grid.localtime = fast_i64(a.value, 0);
        }
      }
      if (grid.name.empty()) return set_error("GRID missing NAME");
      auto& siblings =
          grid_stack_.empty() ? report_.grids : grid_stack_.back()->grids;
      siblings.push_back(std::move(grid));
      grid_stack_.push_back(&siblings.back());
    } else if (name == "GANGLIA_XML") {
      if (depth_ != 0) return set_error("GANGLIA_XML must be the root element");
      report_.version = std::string(attrs.get("VERSION"));
      report_.source = std::string(attrs.get("SOURCE"));
      in_report_ = true;
    }
    // Unknown elements are ignored for forward compatibility.
    ++depth_;
  }

  void on_end_element(std::string_view name) override {
    if (!error_.empty()) return;
    --depth_;
    if (name == "GRID" && !grid_stack_.empty()) {
      grid_stack_.pop_back();
    } else if (name == "CLUSTER") {
      cluster_ = nullptr;
    } else if (name == "HOST") {
      host_ = nullptr;
    }
  }

  Result<Report> take(Status parse_status) {
    if (!parse_status.ok()) return parse_status.error();
    if (!error_.empty()) return Err(Errc::parse_error, error_);
    if (!in_report_) return Err(Errc::parse_error, "missing GANGLIA_XML root");
    return std::move(report_);
  }

 private:
  void set_error(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
  }

  /// The summary container for HOSTS/METRICS at the current position:
  /// a CLUSTER's (cluster-summary form) or the innermost GRID's.
  SummaryInfo* current_summary() {
    if (cluster_ != nullptr) {
      if (!cluster_->summary) cluster_->summary.emplace();
      return &*cluster_->summary;
    }
    if (!grid_stack_.empty()) {
      Grid* g = grid_stack_.back();
      if (!g->summary) g->summary.emplace();
      return &*g->summary;
    }
    return nullptr;
  }

  Report report_;
  xml::StringInterner interner_;
  std::vector<Grid*> grid_stack_;
  Cluster* cluster_ = nullptr;
  Host* host_ = nullptr;
  bool in_report_ = false;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

Result<Report> parse_report(std::string_view doc) {
  ReportBuilder builder;
  xml::SaxParser parser;
  Status status = parser.parse(doc, builder);
  return builder.take(status);
}

}  // namespace ganglia
