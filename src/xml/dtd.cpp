#include "xml/dtd.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "xml/sax.hpp"

namespace ganglia::xml {

namespace {

struct ElementRule {
  std::string_view name;
  std::span<const std::string_view> children;   ///< allowed child elements
  std::span<const std::string_view> required;   ///< required attributes
  std::span<const std::string_view> optional;   ///< optional attributes
};

constexpr std::string_view kRootChildren[] = {"GRID", "CLUSTER"};
constexpr std::string_view kRootRequired[] = {"VERSION", "SOURCE"};

constexpr std::string_view kGridChildren[] = {"GRID", "CLUSTER", "HOSTS",
                                              "METRICS"};
constexpr std::string_view kGridRequired[] = {"NAME"};
constexpr std::string_view kGridOptional[] = {"AUTHORITY", "LOCALTIME"};

constexpr std::string_view kClusterChildren[] = {"HOST", "HOSTS", "METRICS"};
constexpr std::string_view kClusterRequired[] = {"NAME"};
constexpr std::string_view kClusterOptional[] = {"LOCALTIME", "OWNER",
                                                 "LATLONG", "URL"};

constexpr std::string_view kHostChildren[] = {"METRIC"};
constexpr std::string_view kHostRequired[] = {"NAME", "IP", "REPORTED"};
constexpr std::string_view kHostOptional[] = {"TN", "TMAX", "DMAX", "LOCATION",
                                              "GMOND_STARTED"};

constexpr std::string_view kMetricRequired[] = {"NAME", "VAL", "TYPE"};
constexpr std::string_view kMetricOptional[] = {"UNITS", "TN",    "TMAX",
                                                "DMAX",  "SLOPE", "SOURCE"};

constexpr std::string_view kHostsRequired[] = {"UP", "DOWN"};

constexpr std::string_view kMetricsRequired[] = {"NAME", "SUM", "NUM"};
constexpr std::string_view kMetricsOptional[] = {"TYPE", "UNITS"};

const std::array<ElementRule, 7> kRules = {{
    {"GANGLIA_XML", kRootChildren, kRootRequired, {}},
    {"GRID", kGridChildren, kGridRequired, kGridOptional},
    {"CLUSTER", kClusterChildren, kClusterRequired, kClusterOptional},
    {"HOST", kHostChildren, kHostRequired, kHostOptional},
    {"METRIC", {}, kMetricRequired, kMetricOptional},
    {"HOSTS", {}, kHostsRequired, {}},
    {"METRICS", {}, kMetricsRequired, kMetricsOptional},
}};

const ElementRule* find_rule(std::string_view name) {
  for (const ElementRule& rule : kRules) {
    if (rule.name == name) return &rule;
  }
  return nullptr;
}

bool contains(std::span<const std::string_view> haystack,
              std::string_view needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

class DtdHandler final : public SaxHandler {
 public:
  explicit DtdHandler(bool strict) : strict_(strict) {}

  void on_start_element(std::string_view name, const AttrList& attrs) override {
    if (!error_.empty()) return;
    const ElementRule* rule = find_rule(name);
    if (rule == nullptr) {
      error_ = "element <" + std::string(name) + "> is not in the DTD";
      return;
    }
    if (stack_.empty()) {
      if (name != "GANGLIA_XML") {
        error_ = "root element must be GANGLIA_XML, got <" +
                 std::string(name) + ">";
        return;
      }
    } else {
      const ElementRule* parent = stack_.back();
      if (!contains(parent->children, name)) {
        error_ = "<" + std::string(name) + "> not allowed inside <" +
                 std::string(parent->name) + ">";
        return;
      }
    }
    for (std::string_view required : rule->required) {
      if (!attrs.has(required)) {
        error_ = "<" + std::string(name) + "> missing required attribute " +
                 std::string(required);
        return;
      }
    }
    if (strict_) {
      for (const Attr& attr : attrs) {
        if (!contains(rule->required, attr.name) &&
            !contains(rule->optional, attr.name)) {
          error_ = "<" + std::string(name) + "> has undeclared attribute " +
                   std::string(attr.name);
          return;
        }
      }
    }
    stack_.push_back(rule);
  }

  void on_end_element(std::string_view) override {
    if (error_.empty() && !stack_.empty()) stack_.pop_back();
  }

  void on_text(std::string_view) override {
    if (!error_.empty()) return;
    // The dialect has no mixed content (SERIES documents are separate).
    if (!stack_.empty()) {
      error_ = "<" + std::string(stack_.back()->name) +
               "> must not contain character data";
    }
  }

  const std::string& error() const { return error_; }

 private:
  bool strict_;
  std::vector<const ElementRule*> stack_;
  std::string error_;
};

}  // namespace

Status validate_ganglia_dtd(std::string_view document, bool strict) {
  DtdHandler handler(strict);
  SaxParser parser;
  if (Status s = parser.parse(document, handler); !s.ok()) return s;
  if (!handler.error().empty()) {
    return Err(Errc::parse_error, handler.error());
  }
  return {};
}

std::string_view ganglia_dtd_text() {
  return R"(<!-- Ganglia XML dialect, with the GRID extension of
     "Wide Area Cluster Monitoring with Ganglia" (CLUSTER 2003), section 2.2 -->
<!ELEMENT GANGLIA_XML (GRID | CLUSTER)*>
<!ATTLIST GANGLIA_XML VERSION CDATA #REQUIRED
                      SOURCE  CDATA #REQUIRED>

<!ELEMENT GRID (GRID | CLUSTER | HOSTS | METRICS)*>
<!ATTLIST GRID NAME      CDATA #REQUIRED
               AUTHORITY CDATA #IMPLIED
               LOCALTIME CDATA #IMPLIED>

<!ELEMENT CLUSTER (HOST | HOSTS | METRICS)*>
<!ATTLIST CLUSTER NAME      CDATA #REQUIRED
                  LOCALTIME CDATA #IMPLIED
                  OWNER     CDATA #IMPLIED
                  LATLONG   CDATA #IMPLIED
                  URL       CDATA #IMPLIED>

<!ELEMENT HOST (METRIC)*>
<!ATTLIST HOST NAME          CDATA #REQUIRED
               IP            CDATA #REQUIRED
               REPORTED      CDATA #REQUIRED
               TN            CDATA #IMPLIED
               TMAX          CDATA #IMPLIED
               DMAX          CDATA #IMPLIED
               LOCATION      CDATA #IMPLIED
               GMOND_STARTED CDATA #IMPLIED>

<!ELEMENT METRIC EMPTY>
<!ATTLIST METRIC NAME   CDATA #REQUIRED
                 VAL    CDATA #REQUIRED
                 TYPE   CDATA #REQUIRED
                 UNITS  CDATA #IMPLIED
                 TN     CDATA #IMPLIED
                 TMAX   CDATA #IMPLIED
                 DMAX   CDATA #IMPLIED
                 SLOPE  CDATA #IMPLIED
                 SOURCE CDATA #IMPLIED>

<!-- summary form: additive reductions over a known host set -->
<!ELEMENT HOSTS EMPTY>
<!ATTLIST HOSTS UP   CDATA #REQUIRED
                DOWN CDATA #REQUIRED>

<!ELEMENT METRICS EMPTY>
<!ATTLIST METRICS NAME  CDATA #REQUIRED
                  SUM   CDATA #REQUIRED
                  NUM   CDATA #REQUIRED
                  TYPE  CDATA #IMPLIED
                  UNITS CDATA #IMPLIED>
)";
}

}  // namespace ganglia::xml
