// Minimal DOM built on the SAX parser.
//
// The paper's store "approximates a DOM design"; this module is the real
// thing for code that wants a navigable tree — the presenter, tests, and
// ad-hoc tooling.  The gmetad store itself uses its own hash-table layout
// (src/gmetad/store.hpp) as the paper describes.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ganglia::xml {

struct DomNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<DomNode>> children;
  std::string text;  ///< concatenated character data

  /// Attribute value or fallback.
  std::string_view attr(std::string_view attr_name,
                        std::string_view fallback = {}) const noexcept;

  /// First child element with the given name (nullptr when absent).
  const DomNode* child(std::string_view child_name) const noexcept;

  /// All children with the given name.
  std::vector<const DomNode*> children_named(std::string_view child_name) const;

  /// First descendant matching `name` with ATTR NAME==value (depth-first),
  /// e.g. find_named("HOST", "compute-0-0").  nullptr when absent.
  const DomNode* find_named(std::string_view element,
                            std::string_view name_attr_value) const noexcept;

  /// Total element count of this subtree (including this node).
  std::size_t subtree_size() const noexcept;
};

/// Parse a document into a DOM tree.
Result<std::unique_ptr<DomNode>> parse_dom(std::string_view doc);

}  // namespace ganglia::xml
