// The Ganglia XML dialect: typed model, writer, and parser.
//
// This mirrors the on-wire language of paper figure 3:
//
//   <GANGLIA_XML VERSION=".." SOURCE="..">
//     <GRID NAME="SDSC" AUTHORITY="my URL" LOCALTIME="..">
//       <CLUSTER NAME="Meteor" LOCALTIME="..">
//         <HOST NAME="compute-0-0" IP=".." REPORTED=".." TN=".." TMAX="..">
//           <METRIC NAME="cpu_num" VAL="2" TYPE="int32" UNITS="CPUs"
//                   TN="12" TMAX="60" DMAX="0" SLOPE="zero" SOURCE="gmond"/>
//         </HOST>
//       </CLUSTER>
//       <GRID NAME="ATTIC" AUTHORITY="..">      <-- nested grid in summary
//         <HOSTS UP="10" DOWN="1"/>                 form: additive reductions
//         <METRICS NAME="cpu_num" SUM="20" NUM="10" TYPE="int32"/>
//       </GRID>
//     </GRID>
//   </GANGLIA_XML>
//
// A GRID is "a collection of clusters and other grids".  A grid (or cluster)
// may appear either at full detail or in *summary form*; a summary looks
// exactly like the data for a single host where each value is an additive
// reduction over a known set of nodes (SUM and NUM give sum and mean).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ganglia {

// ---------------------------------------------------------------- metrics

/// Metric value types from the Ganglia DTD.
enum class MetricType {
  string_t,
  int8,
  uint8,
  int16,
  uint16,
  int32,
  uint32,
  float_t,
  double_t,
  timestamp,
};

std::string_view metric_type_name(MetricType t) noexcept;
std::optional<MetricType> metric_type_from_name(std::string_view s) noexcept;

/// Numeric types can be summarised; strings are visible only at full
/// resolution (paper §2.2).
constexpr bool metric_type_is_numeric(MetricType t) noexcept {
  return t != MetricType::string_t;
}

/// How a metric's value evolves; gmond uses this for archive hints.
enum class Slope { zero, positive, negative, both, unspecified };

std::string_view slope_name(Slope s) noexcept;
std::optional<Slope> slope_from_name(std::string_view s) noexcept;

/// One monitored metric on one host.
struct Metric {
  std::string name;
  MetricType type = MetricType::float_t;
  std::string value;        ///< exact VAL text as transmitted
  double numeric = 0.0;     ///< parsed value when the type is numeric
  std::string units;
  std::uint32_t tn = 0;     ///< seconds since the value was last updated
  std::uint32_t tmax = 60;  ///< max expected seconds between updates
  std::uint32_t dmax = 0;   ///< seconds after which a silent metric expires
  Slope slope = Slope::both;
  std::string source = "gmond";

  bool is_numeric() const noexcept { return metric_type_is_numeric(type); }

  /// Set value + numeric + type coherently.
  void set_double(double v);
  void set_float(double v) { set_double(v); type = MetricType::float_t; }
  void set_int(std::int64_t v, MetricType t = MetricType::int32);
  void set_uint(std::uint64_t v, MetricType t = MetricType::uint32);
  void set_string(std::string v);
};

// ------------------------------------------------------------------ hosts

struct Host {
  std::string name;
  std::string ip;
  std::int64_t reported = 0;       ///< unix time of last heartbeat
  std::uint32_t tn = 0;            ///< seconds since last heard from
  std::uint32_t tmax = 20;
  std::uint32_t dmax = 0;
  std::string location;            ///< "rack,rank,plane"
  std::int64_t gmond_started = 0;
  std::vector<Metric> metrics;     ///< insertion order preserved

  const Metric* find_metric(std::string_view metric_name) const noexcept;
  Metric* find_metric(std::string_view metric_name) noexcept;

  /// Ganglia's liveness rule: a host is up while TN <= 4*TMAX.
  bool is_up() const noexcept { return tn <= 4 * tmax; }
};

// -------------------------------------------------------------- summaries

/// Additive reduction of one numeric metric over a known host set.
struct MetricSummary {
  double sum = 0.0;
  std::uint64_t num = 0;
  MetricType type = MetricType::double_t;
  std::string units;

  double mean() const noexcept {
    return num == 0 ? 0.0 : sum / static_cast<double>(num);
  }
};

/// Summary of a cluster or grid: HOSTS UP/DOWN plus per-metric reductions.
struct SummaryInfo {
  std::uint32_t hosts_up = 0;
  std::uint32_t hosts_down = 0;
  std::map<std::string, MetricSummary> metrics;  // ordered => stable XML

  /// Fold one host's numeric metrics into the reduction.
  void add_host(const Host& host);

  /// Fold another summary in (grid summaries merge child summaries).
  void merge(const SummaryInfo& other);

  bool empty() const noexcept {
    return hosts_up == 0 && hosts_down == 0 && metrics.empty();
  }
};

// --------------------------------------------------------- clusters/grids

struct Cluster {
  std::string name;
  std::string owner;
  std::string latlong;
  std::string url;
  std::int64_t localtime = 0;
  std::map<std::string, Host> hosts;  // by name, ordered => stable XML

  /// Present when this cluster was reported in summary form (the
  /// cluster-summary query filter of paper §2.3.2); hosts is then empty.
  std::optional<SummaryInfo> summary;

  bool is_summary_form() const noexcept { return summary.has_value(); }

  /// Additive summary of this cluster: the stored summary when in summary
  /// form, otherwise computed over hosts.
  SummaryInfo summarize() const;
};

/// A grid node.  Exactly one of two shapes:
///  * full detail: `clusters` and `grids` children populated;
///  * summary form: `summary` present, children empty (how an N-level
///    gmetad reports grids it is not the authority for).
struct Grid {
  std::string name;
  std::string authority;   ///< URL hosting the higher-resolution view
  std::int64_t localtime = 0;
  std::vector<Cluster> clusters;
  std::vector<Grid> grids;
  std::optional<SummaryInfo> summary;

  bool is_summary_form() const noexcept { return summary.has_value(); }

  /// Recursive additive summary over the whole subtree (uses the stored
  /// summary for summary-form children).
  SummaryInfo summarize() const;

  /// Counts over the full-detail portion of the subtree.
  std::size_t cluster_count() const noexcept;
  std::size_t host_count() const noexcept;
};

/// A complete report: the content of one <GANGLIA_XML> document.
/// Gmond emits a single cluster; gmetad emits a single grid.
struct Report {
  std::string version = "2.5.4";
  std::string source = "gmetad";
  std::vector<Cluster> clusters;
  std::vector<Grid> grids;
};

// ---------------------------------------------------------------- writing

struct WriteOptions {
  bool pretty = false;
  bool with_declaration = true;
  bool with_doctype = false;
};

/// Serialise a full report.
std::string write_report(const Report& report, const WriteOptions& opts = {});

namespace xml {
class XmlWriter;
}

/// Append a single element subtree (used by the query engine to dump
/// exactly the requested subtree).
void write_grid(xml::XmlWriter& w, const Grid& grid);
void write_cluster(xml::XmlWriter& w, const Cluster& cluster);
void write_cluster_summary(xml::XmlWriter& w, const Cluster& cluster);
void write_host(xml::XmlWriter& w, const Host& host);
void write_metric(xml::XmlWriter& w, const Metric& metric);
void write_summary_info(xml::XmlWriter& w, const SummaryInfo& summary);

/// Attribute-only writers: emit the element's attributes on the most
/// recently opened element, without opening/closing it or descending into
/// children.  The render pipeline's XML backend uses these so element
/// wrappers (open tag here, children from another walk or a spliced
/// fragment) stay byte-identical with the full writers above.
void write_cluster_attrs(xml::XmlWriter& w, const Cluster& cluster);
void write_grid_attrs(xml::XmlWriter& w, const Grid& grid);
void write_host_attrs(xml::XmlWriter& w, const Host& host);

// ---------------------------------------------------------------- parsing

/// Parse a <GANGLIA_XML> document into the typed model.  Unknown elements
/// and attributes are ignored (forward compatibility); structural errors
/// (bad nesting, missing NAME, malformed numbers in summary attributes)
/// fail with Errc::parse_error.
Result<Report> parse_report(std::string_view doc);

}  // namespace ganglia
