// XML text/attribute escaping for the Ganglia dialect.
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"

namespace ganglia::xml {

/// Escape the five predefined entities (&, <, >, ", ').  Appends to out.
void escape_append(std::string& out, std::string_view raw);

/// Convenience form returning a fresh string.
std::string escape(std::string_view raw);

/// Decode entity references (&amp; &lt; &gt; &quot; &apos; and numeric
/// &#NN; / &#xNN; for code points <= 0x10FFFF, emitted as UTF-8).
/// Appends to out; fails on malformed or unknown references.
Status unescape_append(std::string& out, std::string_view raw);

/// True if the text contains no '&' (and so needs no decoding pass).
inline bool needs_unescape(std::string_view raw) noexcept {
  return raw.find('&') != std::string_view::npos;
}

}  // namespace ganglia::xml
