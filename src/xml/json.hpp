// Minimal streaming JSON writer.
//
// Lives beside the XML writer because src/xml is the serialization layer:
// the render pipeline (src/gmetad/render) emits monitoring trees through
// format backends, and both the XML and JSON backends need a writer below
// the gmetad layer.  This is the writing half only (the monitor never
// parses JSON), with correct string escaping and container bookkeeping so
// renderers cannot emit malformed documents by forgetting a comma.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ganglia::xml {

/// Append `s` JSON-escaped (without surrounding quotes).
void append_json_escaped(std::string& out, std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value/container.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);  ///< NaN/Inf serialise as null (JSON has no such numbers)
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);
  void null();

  /// Splice pre-serialized, pre-escaped JSON bytes as the next value (or
  /// array elements).  Used by the render pipeline to compose full-tree
  /// responses from publish-time snapshot fragments: `bytes` must be one or
  /// more complete, comma-joined JSON values.  The leading comma (when the
  /// container already has elements) is emitted here; commas *between* the
  /// fragment's own values must already be inside `bytes`.  Empty fragments
  /// are a no-op.
  void raw(std::string_view bytes);

 private:
  void separator();

  std::string& out_;
  /// One flag per open container: true until the first element is written.
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace ganglia::xml
