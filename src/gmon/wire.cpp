#include "gmon/wire.hpp"

#include <cstring>

#include "common/strings.hpp"

namespace ganglia::gmon {

namespace {

constexpr std::uint8_t kHeartbeatKind = 1;
constexpr std::uint8_t kMetricKind = 2;

template <class T>
void put(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void put_string(std::string& out, std::string_view s) {
  put<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <class T>
  bool get(T& v) {
    if (pos_ + sizeof(T) > data_.size()) return false;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool get_string(std::string& s) {
    std::uint16_t len = 0;
    if (!get(len) || pos_ + len > data_.size()) return false;
    s.assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode(const HeartbeatMessage& msg) {
  std::string out;
  put<std::uint8_t>(out, kHeartbeatKind);
  put_string(out, msg.host_name);
  put_string(out, msg.host_ip);
  put<std::int64_t>(out, msg.gmond_started);
  return out;
}

std::string encode(const MetricMessage& msg) {
  std::string out;
  put<std::uint8_t>(out, kMetricKind);
  put_string(out, msg.host_name);
  put_string(out, msg.host_ip);
  const Metric& m = msg.metric;
  put_string(out, m.name);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(m.type));
  put_string(out, m.value);
  put_string(out, m.units);
  put<std::uint32_t>(out, m.tmax);
  put<std::uint32_t>(out, m.dmax);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(m.slope));
  put_string(out, m.source);
  return out;
}

Result<WireMessage> decode(std::string_view datagram) {
  Reader r(datagram);
  std::uint8_t kind = 0;
  if (!r.get(kind)) return Err(Errc::parse_error, "empty datagram");

  if (kind == kHeartbeatKind) {
    HeartbeatMessage msg;
    if (!r.get_string(msg.host_name) || !r.get_string(msg.host_ip) ||
        !r.get(msg.gmond_started) || !r.done()) {
      return Err(Errc::parse_error, "truncated heartbeat datagram");
    }
    return WireMessage{std::move(msg)};
  }

  if (kind == kMetricKind) {
    MetricMessage msg;
    Metric& m = msg.metric;
    std::uint8_t type = 0;
    std::uint8_t slope = 0;
    if (!r.get_string(msg.host_name) || !r.get_string(msg.host_ip) ||
        !r.get_string(m.name) || !r.get(type) || !r.get_string(m.value) ||
        !r.get_string(m.units) || !r.get(m.tmax) || !r.get(m.dmax) ||
        !r.get(slope) || !r.get_string(m.source) || !r.done()) {
      return Err(Errc::parse_error, "truncated metric datagram");
    }
    if (type > static_cast<std::uint8_t>(MetricType::timestamp) ||
        slope > static_cast<std::uint8_t>(Slope::unspecified)) {
      return Err(Errc::parse_error, "bad enum in metric datagram");
    }
    m.type = static_cast<MetricType>(type);
    m.slope = static_cast<Slope>(slope);
    if (m.is_numeric()) {
      auto num = parse_double(m.value);
      if (!num) return Err(Errc::parse_error, "non-numeric VAL in datagram");
      m.numeric = *num;
    }
    return WireMessage{std::move(msg)};
  }

  return Err(Errc::parse_error,
             "unknown datagram kind " + std::to_string(kind));
}

}  // namespace ganglia::gmon
