// GmondDaemon: a real, threaded gmond.
//
// Where GmondAgent lives on the discrete-event simulator, this daemon runs
// on wall-clock threads and real sockets: metrics go out over a UDP mesh
// channel on their soft-state timers, inbound datagrams fold into the
// shared ClusterState, and a TCP port serves the full cluster report —
// a faithful small gmond.  Values come either from the /proc sampler
// (monitor the real host) or from the catalogue's synthetic random walk.
//
// `timer_scale` compresses every soft-state interval (heartbeat, TMAX) by
// the given factor so integration tests can watch minutes of protocol in
// hundreds of milliseconds; 1.0 is the production cadence.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/rng.hpp"
#include "net/service_server.hpp"
#include "gmon/cluster_state.hpp"
#include "gmon/gmond.hpp"
#include "gmon/metrics.hpp"
#include "gmon/proc_sampler.hpp"
#include "gmon/udp_channel.hpp"

namespace ganglia::gmon {

struct GmondDaemonConfig {
  GmondConfig base;                   ///< cluster attrs + heartbeat interval
  std::string host_name = "localhost";
  std::string host_ip = "127.0.0.1";
  UdpMeshChannel::Config channel;     ///< UDP mesh (peers may be added later)
  std::string tcp_bind = "127.0.0.1:0";  ///< XML report port
  bool use_proc = false;              ///< sample /proc instead of synthetic
  double timer_scale = 1.0;           ///< multiply all soft-state intervals
  std::uint64_t seed = 1;
};

class GmondDaemon {
 public:
  explicit GmondDaemon(GmondDaemonConfig config);
  ~GmondDaemon();

  GmondDaemon(const GmondDaemon&) = delete;
  GmondDaemon& operator=(const GmondDaemon&) = delete;

  /// Open the UDP channel, start the receiver + sender threads, and bind
  /// the TCP report port on `tcp_transport`.
  Status start(net::Transport& tcp_transport, Clock& clock);
  void stop();
  bool running() const noexcept { return running_.load(); }

  const std::string& udp_address() const { return channel_->address(); }
  std::string tcp_address() const { return tcp_server_.address(); }
  void add_peer(const std::string& udp_address) {
    channel_->add_peer(udp_address);
  }

  ClusterState& state() noexcept { return state_; }
  UdpMeshChannel::Stats channel_stats() const { return channel_->stats(); }

 private:
  void sender_loop(Clock* clock);
  void send_all_metrics(std::int64_t now);

  GmondDaemonConfig config_;
  ClusterState state_;
  Rng rng_;
  std::unique_ptr<UdpMeshChannel> channel_;
  net::ServiceServer tcp_server_;
  std::unique_ptr<ProcSampler> sampler_;
  std::vector<double> synthetic_values_;
  std::vector<double> next_send_s_;  ///< per-metric deadline (scaled)
  double next_heartbeat_s_ = 0;
  std::atomic<bool> running_{false};
  std::thread sender_;
};

}  // namespace ganglia::gmon
