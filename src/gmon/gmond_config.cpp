#include "gmon/gmond_config.hpp"

#include <unistd.h>

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace ganglia::gmon {

namespace {

Error bad_line(std::size_t line_no, const std::string& what) {
  return Err(Errc::parse_error, what + " on line " + std::to_string(line_no));
}

/// Same token rules as gmetad.conf: whitespace-separated, double quotes
/// keep phrases whole, '#' comments.
Result<std::vector<std::string>> tokenize(std::string_view line,
                                          std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t') {
      ++i;
    } else if (c == '#') {
      break;
    } else if (c == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        return bad_line(line_no, "unterminated quote");
      }
      tokens.emplace_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
             line[end] != '#') {
        ++end;
      }
      tokens.emplace_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

}  // namespace

Result<GmondDaemonConfig> parse_gmond_config(std::string_view text) {
  GmondDaemonConfig config;
  {
    char hostname[256] = {};
    if (gethostname(hostname, sizeof hostname - 1) == 0 && hostname[0] != 0) {
      config.host_name = hostname;
    }
  }

  std::size_t line_no = 0;
  for (std::string_view line : split(text, '\n')) {
    ++line_no;
    auto tokens_r = tokenize(line, line_no);
    if (!tokens_r.ok()) return tokens_r.error();
    const auto& tokens = *tokens_r;
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    const auto need_value = [&]() -> Result<std::string> {
      if (tokens.size() != 2) {
        return bad_line(line_no, key + " needs exactly one value");
      }
      return tokens[1];
    };

    if (key == "cluster_name") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      config.base.cluster_name = *v;
    } else if (key == "owner") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      config.base.owner = *v;
    } else if (key == "latlong") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      config.base.latlong = *v;
    } else if (key == "url") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      config.base.url = *v;
    } else if (key == "host_name") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      config.host_name = *v;
    } else if (key == "host_ip") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      config.host_ip = *v;
    } else if (key == "udp_bind") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      if (v->find(':') == std::string::npos) {
        return bad_line(line_no, "udp_bind must be ip:port");
      }
      config.channel.bind = *v;
    } else if (key == "udp_peer") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      if (v->find(':') == std::string::npos) {
        return bad_line(line_no, "udp_peer must be ip:port");
      }
      config.channel.peers.push_back(*v);
    } else if (key == "tcp_bind") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      if (v->find(':') == std::string::npos) {
        return bad_line(line_no, "tcp_bind must be host:port");
      }
      config.tcp_bind = *v;
    } else if (key == "heartbeat_interval") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      auto n = parse_u64(*v);
      if (!n || *n == 0) return bad_line(line_no, "bad heartbeat_interval");
      config.base.heartbeat_interval_s = static_cast<std::uint32_t>(*n);
    } else if (key == "host_dmax") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      auto n = parse_u64(*v);
      if (!n) return bad_line(line_no, "bad host_dmax");
      config.base.host_dmax = static_cast<std::uint32_t>(*n);
    } else if (key == "use_proc") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      if (*v != "on" && *v != "off") {
        return bad_line(line_no, "use_proc must be on or off");
      }
      config.use_proc = *v == "on";
    } else if (key == "timer_scale") {
      auto v = need_value();
      if (!v.ok()) return v.error();
      auto scale = parse_double(*v);
      if (!scale || *scale <= 0) return bad_line(line_no, "bad timer_scale");
      config.timer_scale = *scale;
    } else {
      return bad_line(line_no, "unknown directive '" + key + "'");
    }
  }
  return config;
}

Result<GmondDaemonConfig> load_gmond_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Err(Errc::io_error, "cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_gmond_config(text.str());
}

}  // namespace ganglia::gmon
