#include "gmon/metrics.hpp"

#include <array>

namespace ganglia::gmon {

namespace {

using MT = MetricType;
using SL = Slope;

// Catalogue mirrors gmond 2.5's metric.h defaults: identity constants have
// long tmax (they rarely change); volatile metrics refresh on short timers.
constexpr std::array<MetricDef, 33> kStandardMetrics = {{
    // name            type          units        slope       tmax  dmax  const  lo       hi       string
    {"cpu_num",        MT::uint16,   "CPUs",      SL::zero,   1200, 0,    true,  1,       4,       {}},
    {"cpu_speed",      MT::uint32,   "MHz",       SL::zero,   1200, 0,    true,  1000,    2800,    {}},
    {"mem_total",      MT::uint32,   "KB",        SL::zero,   1200, 0,    true,  524288,  2097152, {}},
    {"swap_total",     MT::uint32,   "KB",        SL::zero,   1200, 0,    true,  524288,  2097152, {}},
    {"boottime",       MT::uint32,   "s",         SL::zero,   1200, 0,    true,  1.05e9,  1.06e9,  {}},
    {"sys_clock",      MT::timestamp,"s",         SL::zero,   1200, 0,    false, 1.06e9,  1.07e9,  {}},
    {"machine_type",   MT::string_t, "",          SL::zero,   1200, 0,    true,  0,       0,       "x86"},
    {"os_name",        MT::string_t, "",          SL::zero,   1200, 0,    true,  0,       0,       "Linux"},
    {"os_release",     MT::string_t, "",          SL::zero,   1200, 0,    true,  0,       0,       "2.4.18-27.7.xsmp"},
    {"gexec",          MT::string_t, "",          SL::zero,   300,  0,    true,  0,       0,       "OFF"},
    {"heartbeat",      MT::uint32,   "",          SL::unspecified, 20, 80, false, 0,      4.0e9,   {}},
    {"load_one",       MT::float_t,  "",          SL::both,   70,   0,    false, 0.0,     8.0,     {}},
    {"load_five",      MT::float_t,  "",          SL::both,   325,  0,    false, 0.0,     6.0,     {}},
    {"load_fifteen",   MT::float_t,  "",          SL::both,   950,  0,    false, 0.0,     4.0,     {}},
    {"proc_run",       MT::uint32,   "",          SL::both,   950,  0,    false, 0,       16,      {}},
    {"proc_total",     MT::uint32,   "",          SL::both,   950,  0,    false, 40,      400,     {}},
    {"cpu_user",       MT::float_t,  "%",         SL::both,   90,   0,    false, 0.0,     100.0,   {}},
    {"cpu_nice",       MT::float_t,  "%",         SL::both,   90,   0,    false, 0.0,     10.0,    {}},
    {"cpu_system",     MT::float_t,  "%",         SL::both,   90,   0,    false, 0.0,     30.0,    {}},
    {"cpu_idle",       MT::float_t,  "%",         SL::both,   90,   0,    false, 0.0,     100.0,   {}},
    {"cpu_wio",        MT::float_t,  "%",         SL::both,   90,   0,    false, 0.0,     20.0,    {}},
    {"cpu_aidle",      MT::float_t,  "%",         SL::both,   90,   0,    false, 0.0,     100.0,   {}},
    {"mem_free",       MT::uint32,   "KB",        SL::both,   180,  0,    false, 16384,   1048576, {}},
    {"mem_shared",     MT::uint32,   "KB",        SL::both,   180,  0,    false, 0,       65536,   {}},
    {"mem_buffers",    MT::uint32,   "KB",        SL::both,   180,  0,    false, 4096,    262144,  {}},
    {"mem_cached",     MT::uint32,   "KB",        SL::both,   180,  0,    false, 16384,   524288,  {}},
    {"swap_free",      MT::uint32,   "KB",        SL::both,   180,  0,    false, 262144,  2097152, {}},
    {"bytes_in",       MT::float_t,  "bytes/sec", SL::both,   300,  0,    false, 0.0,     1.0e7,   {}},
    {"bytes_out",      MT::float_t,  "bytes/sec", SL::both,   300,  0,    false, 0.0,     1.0e7,   {}},
    {"pkts_in",        MT::float_t,  "packets/sec", SL::both, 300,  0,    false, 0.0,     9000.0,  {}},
    {"pkts_out",       MT::float_t,  "packets/sec", SL::both, 300,  0,    false, 0.0,     9000.0,  {}},
    {"disk_total",     MT::double_t, "GB",        SL::both,   1200, 0,    true,  18.0,    240.0,   {}},
    {"part_max_used",  MT::float_t,  "%",         SL::both,   950,  0,    false, 5.0,     95.0,    {}},
}};

}  // namespace

std::span<const MetricDef> standard_metrics() { return kStandardMetrics; }

const MetricDef* find_metric_def(std::string_view name) {
  for (const MetricDef& def : kStandardMetrics) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

std::size_t numeric_metric_count() {
  std::size_t n = 0;
  for (const MetricDef& def : kStandardMetrics) {
    if (metric_type_is_numeric(def.type)) ++n;
  }
  return n;
}

}  // namespace ganglia::gmon
