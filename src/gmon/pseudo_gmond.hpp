// Pseudo-gmond: the paper's controlled cluster emulator.
//
// "All experiments employ gmon emulators called pseudo-gmond to generate
// controlled Ganglia XML datasets for the monitoring tree.  These agents
// behave identically to a cluster's gmon daemons, except their metric
// values are chosen randomly.  Their XML output conforms to the Ganglia
// DTD, and therefore requires the same processing effort by the gmeta
// system under study." (paper §3)
//
// The emulator holds a full typed Cluster of `host_count` hosts with the
// complete 33-metric catalogue; each report refreshes volatile values with
// a deterministic RNG and stamps current times, then serialises.  The
// serialisation and the downstream parse are therefore byte-for-byte
// representative of a real cluster of that size.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "gmon/metrics.hpp"
#include "net/transport.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::gmon {

struct PseudoGmondConfig {
  std::string cluster_name = "pseudo";
  std::size_t host_count = 100;
  std::uint64_t seed = 42;
  std::string host_prefix = "compute-0-";
  std::string owner = "pseudo-gmond";
  /// Redraw volatile metric values on every report (matches live clusters);
  /// disable for byte-identical reports across polls.
  bool fresh_values_per_query = true;
};

class PseudoGmond {
 public:
  PseudoGmond(PseudoGmondConfig config, Clock& clock);

  /// Full cluster report, as the gmond TCP port would serve it.
  std::string report_xml();

  /// The same data in typed form (REPORTED/TN stamped against now).
  Cluster snapshot();

  /// Transport service: ignores the request, serves the full report.
  net::ServiceFn service();

  /// Mark the first `n` hosts as down (silent past 4*TMAX); they stay in
  /// the report so summaries count them in HOSTS DOWN.
  void set_down_hosts(std::size_t n);

  /// Grow or shrink the emulated cluster (hosts keep deterministic values).
  void resize(std::size_t host_count);

  std::size_t host_count() const noexcept { return hosts_.size(); }
  std::uint64_t reports_served() const noexcept { return reports_served_; }

 private:
  struct SimHost {
    std::string name;
    std::string ip;
    std::vector<double> values;  ///< one per catalogue metric
    bool down = false;
  };

  SimHost make_host(std::size_t index);
  void fill_cluster(Cluster& out, std::int64_t now);

  PseudoGmondConfig config_;
  Clock& clock_;
  Rng rng_;
  std::vector<SimHost> hosts_;
  std::uint64_t reports_served_ = 0;
};

}  // namespace ganglia::gmon
