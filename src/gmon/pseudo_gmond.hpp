// Pseudo-gmond: the paper's controlled cluster emulator.
//
// "All experiments employ gmon emulators called pseudo-gmond to generate
// controlled Ganglia XML datasets for the monitoring tree.  These agents
// behave identically to a cluster's gmon daemons, except their metric
// values are chosen randomly.  Their XML output conforms to the Ganglia
// DTD, and therefore requires the same processing effort by the gmeta
// system under study." (paper §3)
//
// The emulator holds a full typed Cluster of `host_count` hosts with the
// complete 33-metric catalogue; each report refreshes volatile values with
// a deterministic RNG and stamps current times, then serialises.  The
// serialisation and the downstream parse are therefore byte-for-byte
// representative of a real cluster of that size.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "fed/publisher.hpp"
#include "gmon/metrics.hpp"
#include "net/transport.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::gmon {

struct PseudoGmondConfig {
  std::string cluster_name = "pseudo";
  std::size_t host_count = 100;
  std::uint64_t seed = 42;
  std::string host_prefix = "compute-0-";
  std::string owner = "pseudo-gmond";
  /// Redraw volatile metric values on every report (matches live clusters);
  /// disable for byte-identical reports across polls.
  bool fresh_values_per_query = true;
  /// Emulate gmond's soft-state broadcast timers instead of redrawing
  /// everything: each metric rebroadcasts (new value, TN reset) only every
  /// max(1, tmax/2) seconds, hosts heartbeat every 10 s, and everything
  /// else just ages — the workload shape real deltas see.  Deterministic
  /// in (seed, clock), so concurrent pollers observe identical reports.
  /// Takes precedence over fresh_values_per_query.
  bool soft_state_timers = false;
};

class PseudoGmond {
 public:
  PseudoGmond(PseudoGmondConfig config, Clock& clock);

  /// Full cluster report, as the gmond TCP port would serve it.
  std::string report_xml();

  /// The same data in typed form (REPORTED/TN stamped against now).
  Cluster snapshot();

  /// Transport service: ignores the request, serves the full report.
  net::ServiceFn service();

  /// Delta-federation service: answers framed poll/ping requests with row
  /// deltas against the peer's last acknowledged report (full XML on first
  /// contact or resync).  The published document is rebuilt at most once
  /// per clock second, so every poller within a second sees one version.
  net::ServiceFn federation_service();

  /// Mark the first `n` hosts as down (silent past 4*TMAX); they stay in
  /// the report so summaries count them in HOSTS DOWN.
  void set_down_hosts(std::size_t n);

  /// Grow or shrink the emulated cluster (hosts keep deterministic values).
  void resize(std::size_t host_count);

  std::size_t host_count() const noexcept { return hosts_.size(); }
  std::uint64_t reports_served() const noexcept { return reports_served_; }

 private:
  struct SimHost {
    std::string name;
    std::string ip;
    std::vector<double> values;  ///< one per catalogue metric
    bool down = false;
    // Soft-state timers (lazily sized; 0 = not yet staggered in).
    std::vector<std::int64_t> last_broadcast;  ///< one per catalogue metric
    std::int64_t last_heartbeat = 0;
  };

  SimHost make_host(std::size_t index);
  void fill_cluster(Cluster& out, std::int64_t now);
  fed::Doc federation_doc();

  PseudoGmondConfig config_;
  Clock& clock_;
  Rng rng_;
  std::vector<SimHost> hosts_;
  std::uint64_t reports_served_ = 0;

  // Delta federation serving (created on first federation_service() call).
  std::mutex fed_mutex_;
  std::unique_ptr<fed::Publisher> fed_publisher_;
  std::shared_ptr<const Report> fed_doc_;
  std::int64_t fed_doc_second_ = -1;
  std::uint64_t fed_doc_version_ = 0;
};

}  // namespace ganglia::gmon
