#include "gmon/udp_channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.hpp"

namespace ganglia::gmon {

namespace {

Result<sockaddr_in> parse_udp_address(std::string_view address) {
  const auto colon = address.rfind(':');
  if (colon == std::string_view::npos) {
    return Err(Errc::invalid_argument,
               "UDP address must be ip:port, got '" + std::string(address) + "'");
  }
  auto port = parse_u64(address.substr(colon + 1));
  if (!port || *port > 65535) {
    return Err(Errc::invalid_argument, "bad UDP port in '" +
                                           std::string(address) + "'");
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(*port));
  const std::string host(address.substr(0, colon));
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Err(Errc::invalid_argument, "bad IPv4 address '" + host + "'");
  }
  return sa;
}

std::string to_string(const sockaddr_in& sa) {
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof buf);
  return std::string(buf) + ":" + std::to_string(ntohs(sa.sin_port));
}

}  // namespace

Result<std::unique_ptr<UdpMeshChannel>> UdpMeshChannel::open(Config config) {
  auto bind_addr = parse_udp_address(config.bind);
  if (!bind_addr.ok()) return bind_addr.error();

  auto channel = std::unique_ptr<UdpMeshChannel>(
      new UdpMeshChannel(std::move(config)));
  channel->fd_ = net::Fd(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  if (!channel->fd_.valid()) {
    return Err(Errc::io_error, std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(channel->fd_.get(), reinterpret_cast<sockaddr*>(&*bind_addr),
             sizeof *bind_addr) != 0) {
    return Err(Errc::io_error, "bind " + channel->config_.bind + ": " +
                                   std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  getsockname(channel->fd_.get(), reinterpret_cast<sockaddr*>(&bound), &len);
  channel->address_ = to_string(bound);

  for (const std::string& peer : channel->config_.peers) {
    channel->add_peer(peer);
  }
  return channel;
}

UdpMeshChannel::~UdpMeshChannel() { close(); }

void UdpMeshChannel::add_peer(const std::string& address) {
  std::lock_guard lock(mutex_);
  for (const std::string& existing : resolved_peers_) {
    if (existing == address) return;
  }
  resolved_peers_.push_back(address);
}

Status UdpMeshChannel::publish(std::string_view datagram) {
  std::vector<std::string> peers;
  {
    std::lock_guard lock(mutex_);
    peers = resolved_peers_;
  }
  if (config_.loopback_self) peers.push_back(address_);

  Status first_error;
  for (const std::string& peer : peers) {
    auto sa = parse_udp_address(peer);
    if (!sa.ok()) {
      if (first_error.ok()) first_error = sa.error();
      continue;
    }
    const ssize_t n =
        ::sendto(fd_.get(), datagram.data(), datagram.size(), 0,
                 reinterpret_cast<sockaddr*>(&*sa), sizeof *sa);
    std::lock_guard lock(mutex_);
    if (n == static_cast<ssize_t>(datagram.size())) {
      ++stats_.datagrams_sent;
      stats_.bytes_sent += datagram.size();
    } else if (first_error.ok()) {
      first_error = Err(Errc::io_error,
                        "sendto " + peer + ": " + std::strerror(errno));
    }
  }
  return first_error;
}

Status UdpMeshChannel::start_receiver(Handler handler) {
  if (running_.exchange(true)) {
    return Err(Errc::invalid_argument, "receiver already running");
  }
  receiver_ = std::thread([this, handler = std::move(handler)] {
    char buf[65536];
    while (running_.load()) {
      pollfd pfd{fd_.get(), POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);  // wake to notice close()
      if (rc <= 0) continue;
      const ssize_t n = ::recv(fd_.get(), buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return;  // socket closed
      }
      {
        std::lock_guard lock(mutex_);
        ++stats_.datagrams_received;
        stats_.bytes_received += static_cast<std::uint64_t>(n);
      }
      handler(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  });
  return {};
}

void UdpMeshChannel::close() {
  if (running_.exchange(false)) {
    if (receiver_.joinable()) receiver_.join();
  }
  fd_.reset();
}

UdpMeshChannel::Stats UdpMeshChannel::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace ganglia::gmon
