// Real UDP metric exchange.
//
// Gmon's local-area backbone is UDP multicast; real gmond equally supports
// *unicast send channels* for networks where multicast is unavailable
// (clouds, containers).  This is that mode: every agent binds a UDP socket
// and fans each datagram out to its peer list — same soft-state semantics,
// same wire format, routable everywhere.  A receiver thread delivers
// inbound datagrams to a callback.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "net/tcp.hpp"  // Fd

namespace ganglia::gmon {

class UdpMeshChannel {
 public:
  struct Config {
    std::string bind = "127.0.0.1:0";   ///< local address (port 0 = ephemeral)
    std::vector<std::string> peers;     ///< unicast fan-out targets
    bool loopback_self = true;          ///< deliver own datagrams locally
  };

  struct Stats {
    std::uint64_t datagrams_sent = 0;   ///< per-peer sends
    std::uint64_t datagrams_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t decode_drops = 0;     ///< short reads / bad peers
  };

  /// Bind the socket.  The channel is not receiving until
  /// start_receiver() is called.
  static Result<std::unique_ptr<UdpMeshChannel>> open(Config config);

  ~UdpMeshChannel();
  UdpMeshChannel(const UdpMeshChannel&) = delete;
  UdpMeshChannel& operator=(const UdpMeshChannel&) = delete;

  /// Actual bound "ip:port".
  const std::string& address() const noexcept { return address_; }

  /// Extend the mesh (soft state tolerates peers learned late).
  void add_peer(const std::string& address);

  /// Send one datagram to every peer (and to ourselves if configured).
  Status publish(std::string_view datagram);

  /// Start delivering inbound datagrams to `handler` on a receiver thread.
  using Handler = std::function<void(std::string_view datagram)>;
  Status start_receiver(Handler handler);

  /// Stop the receiver thread and close the socket.
  void close();

  Stats stats() const;

 private:
  explicit UdpMeshChannel(Config config) : config_(std::move(config)) {}

  Config config_;
  net::Fd fd_;
  std::string address_;
  mutable std::mutex mutex_;  // guards peers_ and stats_
  std::vector<std::string> resolved_peers_;
  Stats stats_;
  std::atomic<bool> running_{false};
  std::thread receiver_;
};

}  // namespace ganglia::gmon
