#include "gmon/pseudo_gmond.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace ganglia::gmon {

PseudoGmond::PseudoGmond(PseudoGmondConfig config, Clock& clock)
    : config_(std::move(config)), clock_(clock), rng_(config_.seed) {
  hosts_.reserve(config_.host_count);
  for (std::size_t i = 0; i < config_.host_count; ++i) {
    hosts_.push_back(make_host(i));
  }
}

PseudoGmond::SimHost PseudoGmond::make_host(std::size_t index) {
  SimHost host;
  host.name = config_.host_prefix + std::to_string(index) + ".local";
  host.ip = strprintf("10.%u.%u.%u",
                      static_cast<unsigned>((index >> 16) & 0xff),
                      static_cast<unsigned>((index >> 8) & 0xff),
                      static_cast<unsigned>(index & 0xff));
  // Independent stream per host so resize() leaves existing hosts stable.
  Rng host_rng(SplitMix64(config_.seed).next() + index * 0x9e3779b97f4a7c15ULL);
  const auto catalogue = standard_metrics();
  host.values.reserve(catalogue.size());
  for (const MetricDef& def : catalogue) {
    host.values.push_back(host_rng.next_range(def.sim_lo, def.sim_hi));
  }
  return host;
}

void PseudoGmond::resize(std::size_t host_count) {
  if (host_count < hosts_.size()) {
    hosts_.resize(host_count);
    return;
  }
  hosts_.reserve(host_count);
  for (std::size_t i = hosts_.size(); i < host_count; ++i) {
    hosts_.push_back(make_host(i));
  }
}

void PseudoGmond::set_down_hosts(std::size_t n) {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i].down = i < n;
  }
}

void PseudoGmond::fill_cluster(Cluster& out, std::int64_t now) {
  out.name = config_.cluster_name;
  out.owner = config_.owner;
  out.localtime = now;
  const auto catalogue = standard_metrics();
  std::size_t host_index = 0;
  for (SimHost& sim_host : hosts_) {
    // With fresh values disabled, reports must be byte-identical across
    // polls: draw TN stamps from a per-host RNG reseeded every report
    // instead of the advancing stream.
    Rng stable_rng(SplitMix64(config_.seed ^ 0x7e57ab1eULL).next() +
                   host_index * 31);
    Rng& draw = config_.fresh_values_per_query ? rng_ : stable_rng;
    if (config_.soft_state_timers) {
      // Soft-state mode: values change only when a metric's rebroadcast
      // timer fires (every tmax/2, staggered per host/metric so the whole
      // cluster never fires at once).  Everything is a pure function of
      // (seed, timer state, now) — no advancing stream — so repeated fills
      // at the same second are identical.
      if (sim_host.last_broadcast.size() != catalogue.size()) {
        sim_host.last_broadcast.assign(catalogue.size(), 0);
      }
      for (std::size_t m = 0; m < catalogue.size(); ++m) {
        const MetricDef& def = catalogue[m];
        const std::int64_t interval =
            std::max<std::int64_t>(1, static_cast<std::int64_t>(def.tmax) / 2);
        std::int64_t& broadcast = sim_host.last_broadcast[m];
        if (broadcast == 0) {
          Rng stagger(SplitMix64(config_.seed ^ 0x50f7574aULL).next() +
                      host_index * 131 + m);
          broadcast = std::max<std::int64_t>(
              0, now - static_cast<std::int64_t>(stagger.next_below(
                         static_cast<std::uint32_t>(interval))));
        } else if (now - broadcast >= interval) {
          broadcast = now;
          if (!def.constant && metric_type_is_numeric(def.type)) {
            Rng redraw(SplitMix64(config_.seed ^
                                  static_cast<std::uint64_t>(now))
                           .next() +
                       host_index * 1000003ULL + m * 8191ULL);
            sim_host.values[m] = redraw.next_range(def.sim_lo, def.sim_hi);
          }
        }
      }
      if (sim_host.last_heartbeat == 0) {
        Rng stagger(SplitMix64(config_.seed ^ 0x4ea27b7aULL).next() +
                    host_index * 37);
        sim_host.last_heartbeat =
            std::max<std::int64_t>(0, now - static_cast<std::int64_t>(
                                           stagger.next_below(10)));
      } else if (now - sim_host.last_heartbeat >= 10) {
        sim_host.last_heartbeat = now;
      }
    } else if (config_.fresh_values_per_query) {
      for (std::size_t m = 0; m < catalogue.size(); ++m) {
        const MetricDef& def = catalogue[m];
        if (def.constant || !metric_type_is_numeric(def.type)) continue;
        sim_host.values[m] = rng_.next_range(def.sim_lo, def.sim_hi);
      }
    }
    ++host_index;
    Host host;
    host.name = sim_host.name;
    host.ip = sim_host.ip;
    host.tmax = 20;
    if (sim_host.down) {
      // Silent for well past 4*TMAX: counted in HOSTS DOWN.
      host.tn = 400;
      host.reported = now - 400;
    } else if (config_.soft_state_timers) {
      host.tn = static_cast<std::uint32_t>(now - sim_host.last_heartbeat);
      host.reported = sim_host.last_heartbeat;
    } else {
      host.tn = static_cast<std::uint32_t>(draw.next_below(15));
      host.reported = now - host.tn;
    }
    host.gmond_started = now - 86'400;
    host.metrics.reserve(catalogue.size());
    for (std::size_t m = 0; m < catalogue.size(); ++m) {
      const MetricDef& def = catalogue[m];
      Metric metric;
      metric.name = std::string(def.name);
      metric.units = std::string(def.units);
      metric.slope = def.slope;
      metric.tmax = def.tmax;
      metric.dmax = def.dmax;
      metric.tn =
          config_.soft_state_timers
              ? static_cast<std::uint32_t>(now - sim_host.last_broadcast[m])
              : static_cast<std::uint32_t>(draw.next_below(def.tmax));
      metric.source = "gmond";
      metric.type = def.type;
      const double v = sim_host.values[m];
      switch (def.type) {
        case MetricType::string_t:
          metric.value = std::string(def.string_value);
          break;
        case MetricType::float_t:
        case MetricType::double_t:
          metric.numeric = v;
          metric.value = strprintf("%.2f", v);
          break;
        default:
          metric.numeric = std::floor(v);
          metric.value = std::to_string(static_cast<std::int64_t>(v));
          break;
      }
      host.metrics.push_back(std::move(metric));
    }
    out.hosts.emplace(host.name, std::move(host));
  }
}

Cluster PseudoGmond::snapshot() {
  Cluster out;
  fill_cluster(out, clock_.now_seconds());
  return out;
}

std::string PseudoGmond::report_xml() {
  ++reports_served_;
  Report report;
  report.source = "gmond";
  report.clusters.emplace_back();
  fill_cluster(report.clusters.back(), clock_.now_seconds());
  return write_report(report);
}

net::ServiceFn PseudoGmond::service() {
  return [this](std::string_view) -> Result<std::string> {
    return report_xml();
  };
}

fed::Doc PseudoGmond::federation_doc() {
  std::lock_guard lock(fed_mutex_);
  const std::int64_t now = clock_.now_seconds();
  if (fed_doc_ == nullptr || fed_doc_second_ != now) {
    ++reports_served_;
    Report report;
    report.source = "gmond";
    report.clusters.emplace_back();
    fill_cluster(report.clusters.back(), now);
    fed_doc_ = std::make_shared<const Report>(std::move(report));
    fed_doc_second_ = now;
    ++fed_doc_version_;
  }
  return {fed_doc_, fed_doc_version_};
}

net::ServiceFn PseudoGmond::federation_service() {
  if (fed_publisher_ == nullptr) {
    fed_publisher_ = std::make_unique<fed::Publisher>(
        [this] { return federation_doc(); });
  }
  fed::Publisher* publisher = fed_publisher_.get();
  return [publisher](std::string_view request) -> Result<std::string> {
    return publisher->serve(request);
  };
}

}  // namespace ganglia::gmon
