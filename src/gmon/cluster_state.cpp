#include "gmon/cluster_state.hpp"

#include "gmon/metrics.hpp"
#include "xml/writer.hpp"

namespace ganglia::gmon {

namespace {

Host& ensure_host(Cluster& cluster, const std::string& name,
                  const std::string& ip, std::int64_t now) {
  auto it = cluster.hosts.find(name);
  if (it == cluster.hosts.end()) {
    Host host;
    host.name = name;
    host.ip = ip;
    host.reported = now;
    host.tmax = 20;  // heartbeat interval bound
    host.dmax = 0;
    it = cluster.hosts.emplace(name, std::move(host)).first;
  }
  return it->second;
}

}  // namespace

void ClusterState::apply(const WireMessage& msg, std::int64_t now) {
  if (const auto* hb = std::get_if<HeartbeatMessage>(&msg)) {
    apply_heartbeat(*hb, now);
  } else if (const auto* metric = std::get_if<MetricMessage>(&msg)) {
    apply_metric(*metric, now);
  }
}

void ClusterState::apply_heartbeat(const HeartbeatMessage& msg,
                                   std::int64_t now) {
  std::lock_guard lock(mutex_);
  Host& host = ensure_host(cluster_, msg.host_name, msg.host_ip, now);
  host.reported = now;
  host.gmond_started = msg.gmond_started;
}

void ClusterState::apply_metric(const MetricMessage& msg, std::int64_t now) {
  std::lock_guard lock(mutex_);
  Host& host = ensure_host(cluster_, msg.host_name, msg.host_ip, now);
  // Metric traffic proves liveness just like heartbeats do.
  host.reported = now;
  if (Metric* existing = host.find_metric(msg.metric.name)) {
    *existing = msg.metric;
  } else {
    host.metrics.push_back(msg.metric);
  }
  // Track when we heard this metric so snapshot() can compute TN.
  last_metric_time_[host.name + "\x1f" + msg.metric.name] = now;
}

std::size_t ClusterState::expire(std::int64_t now) {
  std::lock_guard lock(mutex_);
  std::size_t removed = 0;
  for (auto host_it = cluster_.hosts.begin();
       host_it != cluster_.hosts.end();) {
    Host& host = host_it->second;
    const std::int64_t silent = now - host.reported;
    // Metric-level DMAX expiry.
    std::erase_if(host.metrics, [&](const Metric& m) {
      if (m.dmax == 0) return false;
      const auto key = host.name + "\x1f" + m.name;
      const auto it = last_metric_time_.find(key);
      const std::int64_t heard = it == last_metric_time_.end() ? host.reported
                                                               : it->second;
      if (now - heard > static_cast<std::int64_t>(m.dmax)) {
        last_metric_time_.erase(key);
        return true;
      }
      return false;
    });
    // Host-level DMAX expiry (departed node removed entirely).
    if (host.dmax != 0 && silent > static_cast<std::int64_t>(host.dmax)) {
      for (const Metric& m : host.metrics) {
        last_metric_time_.erase(host.name + "\x1f" + m.name);
      }
      host_it = cluster_.hosts.erase(host_it);
      ++removed;
    } else {
      ++host_it;
    }
  }
  return removed;
}

Cluster ClusterState::snapshot(std::int64_t now) const {
  std::lock_guard lock(mutex_);
  Cluster out = cluster_;
  out.localtime = now;
  for (auto& [name, host] : out.hosts) {
    (void)name;
    host.tn = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, now - host.reported));
    for (Metric& m : host.metrics) {
      const auto it = last_metric_time_.find(host.name + "\x1f" + m.name);
      const std::int64_t heard =
          it == last_metric_time_.end() ? host.reported : it->second;
      m.tn = static_cast<std::uint32_t>(std::max<std::int64_t>(0, now - heard));
    }
  }
  return out;
}

std::string ClusterState::report_xml(std::int64_t now,
                                     std::string_view gmond_version) const {
  Report report;
  report.version = std::string(gmond_version);
  report.source = "gmond";
  report.clusters.push_back(snapshot(now));
  return write_report(report);
}

std::size_t ClusterState::host_count() const {
  std::lock_guard lock(mutex_);
  return cluster_.hosts.size();
}

}  // namespace ganglia::gmon
