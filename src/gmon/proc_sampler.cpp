#include "gmon/proc_sampler.hpp"

#include <sys/utsname.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "gmon/metrics.hpp"

namespace ganglia::gmon {

ProcSampler::ProcSampler(Clock& clock, std::string root)
    : clock_(clock), root_(std::move(root)) {}

bool ProcSampler::available() const {
  return read_file("loadavg").has_value();
}

std::optional<std::string> ProcSampler::read_file(const std::string& name) const {
  std::ifstream in(root_ + "/" + name);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::optional<ProcSampler::CpuTimes> ProcSampler::read_cpu() const {
  const auto stat = read_file("stat");
  if (!stat) return std::nullopt;
  // First line: "cpu  user nice system idle iowait irq softirq ..."
  const auto line_end = stat->find('\n');
  const auto fields = split_ws(std::string_view(*stat).substr(0, line_end));
  if (fields.size() < 5 || fields[0] != "cpu") return std::nullopt;
  CpuTimes t;
  t.user = parse_u64(fields[1]).value_or(0);
  t.nice = parse_u64(fields[2]).value_or(0);
  t.system = parse_u64(fields[3]).value_or(0);
  t.idle = parse_u64(fields[4]).value_or(0);
  if (fields.size() > 5) t.iowait = parse_u64(fields[5]).value_or(0);
  return t;
}

std::optional<ProcSampler::NetTotals> ProcSampler::read_net() const {
  const auto dev = read_file("net/dev");
  if (!dev) return std::nullopt;
  NetTotals totals;
  for (std::string_view line : split(*dev, '\n', /*skip_empty=*/true)) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // header lines
    const std::string_view iface = trim(line.substr(0, colon));
    if (iface == "lo") continue;  // loopback is not network load
    const auto fields = split_ws(line.substr(colon + 1));
    if (fields.size() < 10) continue;
    totals.bytes_in += parse_u64(fields[0]).value_or(0);
    totals.pkts_in += parse_u64(fields[1]).value_or(0);
    totals.bytes_out += parse_u64(fields[8]).value_or(0);
    totals.pkts_out += parse_u64(fields[9]).value_or(0);
  }
  return totals;
}

std::vector<Metric> ProcSampler::sample() {
  std::vector<Metric> metrics;
  const auto add_gauge = [&](std::string_view name, double value) {
    const MetricDef* def = find_metric_def(name);
    Metric m;
    m.name = std::string(name);
    if (def != nullptr) {
      m.units = std::string(def->units);
      m.slope = def->slope;
      m.tmax = def->tmax;
      m.dmax = def->dmax;
      m.type = def->type;
    }
    if (m.type == MetricType::float_t || m.type == MetricType::double_t) {
      m.numeric = value;
      m.value = strprintf("%.2f", value);
    } else {
      m.set_uint(static_cast<std::uint64_t>(value),
                 def != nullptr ? def->type : MetricType::uint32);
    }
    metrics.push_back(std::move(m));
  };
  const auto add_string = [&](std::string_view name, std::string value) {
    Metric m;
    m.name = std::string(name);
    if (const MetricDef* def = find_metric_def(name)) {
      m.tmax = def->tmax;
      m.slope = def->slope;
    }
    m.set_string(std::move(value));
    metrics.push_back(std::move(m));
  };

  // loadavg: "0.42 0.36 0.30 1/123 4567"
  if (const auto loadavg = read_file("loadavg")) {
    const auto fields = split_ws(*loadavg);
    if (fields.size() >= 4) {
      add_gauge("load_one", parse_double(fields[0]).value_or(0));
      add_gauge("load_five", parse_double(fields[1]).value_or(0));
      add_gauge("load_fifteen", parse_double(fields[2]).value_or(0));
      const auto procs = split(fields[3], '/');
      if (procs.size() == 2) {
        add_gauge("proc_run", static_cast<double>(parse_u64(procs[0]).value_or(0)));
        add_gauge("proc_total", static_cast<double>(parse_u64(procs[1]).value_or(0)));
      }
    }
  }

  // meminfo: "MemTotal:  16384 kB" style lines.
  if (const auto meminfo = read_file("meminfo")) {
    const auto value_of = [&](std::string_view key) -> std::optional<double> {
      for (std::string_view line : split(*meminfo, '\n', true)) {
        if (!starts_with(line, key)) continue;
        const auto fields = split_ws(line.substr(key.size()));
        if (!fields.empty()) {
          if (auto v = parse_u64(fields[0])) return static_cast<double>(*v);
        }
      }
      return std::nullopt;
    };
    if (auto v = value_of("MemTotal:")) add_gauge("mem_total", *v);
    if (auto v = value_of("MemFree:")) add_gauge("mem_free", *v);
    if (auto v = value_of("Shmem:")) add_gauge("mem_shared", *v);
    if (auto v = value_of("Buffers:")) add_gauge("mem_buffers", *v);
    if (auto v = value_of("Cached:")) add_gauge("mem_cached", *v);
    if (auto v = value_of("SwapTotal:")) add_gauge("swap_total", *v);
    if (auto v = value_of("SwapFree:")) add_gauge("swap_free", *v);
  }

  const TimeUs now_us = clock_.now_us();
  const double elapsed =
      prev_sample_us_ > 0 ? us_to_seconds(now_us - prev_sample_us_) : 0.0;

  // CPU percentages from jiffy deltas.
  if (const auto cpu = read_cpu()) {
    if (prev_cpu_ && cpu->total() > prev_cpu_->total()) {
      const double total =
          static_cast<double>(cpu->total() - prev_cpu_->total());
      const auto pct = [&](std::uint64_t cur, std::uint64_t prev) {
        return 100.0 * static_cast<double>(cur - prev) / total;
      };
      add_gauge("cpu_user", pct(cpu->user, prev_cpu_->user));
      add_gauge("cpu_nice", pct(cpu->nice, prev_cpu_->nice));
      add_gauge("cpu_system", pct(cpu->system, prev_cpu_->system));
      add_gauge("cpu_idle", pct(cpu->idle, prev_cpu_->idle));
      add_gauge("cpu_wio", pct(cpu->iowait, prev_cpu_->iowait));
    }
    prev_cpu_ = cpu;
  }

  // Network rates from byte/packet counter deltas.
  if (const auto netdev = read_net()) {
    if (prev_net_ && elapsed > 0) {
      const auto rate = [&](std::uint64_t cur, std::uint64_t prev) {
        return cur >= prev ? static_cast<double>(cur - prev) / elapsed : 0.0;
      };
      add_gauge("bytes_in", rate(netdev->bytes_in, prev_net_->bytes_in));
      add_gauge("bytes_out", rate(netdev->bytes_out, prev_net_->bytes_out));
      add_gauge("pkts_in", rate(netdev->pkts_in, prev_net_->pkts_in));
      add_gauge("pkts_out", rate(netdev->pkts_out, prev_net_->pkts_out));
    }
    prev_net_ = netdev;
  }
  prev_sample_us_ = now_us;

  // Boot time from uptime; cpu_num/identity from sysconf/uname.
  if (const auto uptime = read_file("uptime")) {
    const auto fields = split_ws(*uptime);
    if (!fields.empty()) {
      const double up = parse_double(fields[0]).value_or(0);
      add_gauge("boottime",
                static_cast<double>(clock_.now_seconds()) - up);
    }
  }
  const long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  if (cpus > 0) add_gauge("cpu_num", static_cast<double>(cpus));

  utsname uts{};
  if (uname(&uts) == 0) {
    add_string("os_name", uts.sysname);
    add_string("os_release", uts.release);
    add_string("machine_type", uts.machine);
  }

  return metrics;
}

}  // namespace ganglia::gmon
