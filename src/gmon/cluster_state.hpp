// Redundant, soft-state cluster membership.
//
// "All Gmon agents have redundant global knowledge of the cluster, so that
// any node can supply a complete report containing the state of itself and
// all its neighbors" (paper §1).  This class is that knowledge: every agent
// owns one, folds in heartbeat/metric datagrams from the multicast channel,
// and expires hosts/metrics whose soft-state timers (tmax/dmax) lapse —
// newly arrived and departed nodes are incorporated automatically, with no
// a priori configuration.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.hpp"
#include "gmon/wire.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::gmon {

class ClusterState {
 public:
  /// `cluster` supplies the CLUSTER attributes of reports.
  explicit ClusterState(Cluster cluster_attrs)
      : cluster_(std::move(cluster_attrs)) {}

  /// Fold in a decoded datagram at time `now` (seconds).
  void apply(const WireMessage& msg, std::int64_t now);
  void apply_heartbeat(const HeartbeatMessage& msg, std::int64_t now);
  void apply_metric(const MetricMessage& msg, std::int64_t now);

  /// Drop metrics whose DMAX lapsed and hosts silent past their DMAX.
  /// (TMAX lapses mark a host down but keep it — the paper's monitors
  /// report down hosts so archives keep "zero records" for forensics.)
  /// Returns the number of hosts removed.
  std::size_t expire(std::int64_t now);

  /// Snapshot as a typed Cluster with TN values computed against `now`.
  Cluster snapshot(std::int64_t now) const;

  /// Full cluster report as Ganglia XML (what the gmond TCP port serves).
  std::string report_xml(std::int64_t now, std::string_view gmond_version) const;

  std::size_t host_count() const;

 private:
  mutable std::mutex mutex_;
  Cluster cluster_;  ///< hosts' reported/tn track last-heard times
  /// "host\x1fmetric" -> time the metric was last heard (drives TN/DMAX).
  std::unordered_map<std::string, std::int64_t> last_metric_time_;
};

}  // namespace ganglia::gmon
