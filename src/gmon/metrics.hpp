// The standard gmond metric catalogue.
//
// "Each node in the cluster has about 30 monitoring metrics, which can also
// be user-defined" (paper fig 3).  This table reproduces ganglia 2.5's
// built-in metric set: identity/capacity constants (cpu_num, mem_total,
// boottime, os_name ...) broadcast rarely, and volatile metrics (load_one,
// cpu_user, bytes_in ...) broadcast on short soft-state timers.  Each entry
// also carries a plausible simulation range so pseudo-gmond can draw
// random-but-realistic values.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "xml/ganglia.hpp"

namespace ganglia::gmon {

struct MetricDef {
  std::string_view name;
  MetricType type = MetricType::float_t;
  std::string_view units;
  Slope slope = Slope::both;
  /// Max seconds between multicasts of this metric (soft-state refresh).
  std::uint32_t tmax = 60;
  /// Seconds after which a silent metric is deleted from peers (0 = never).
  std::uint32_t dmax = 0;
  /// True for per-host constants (cpu_num, os_name, boottime ...): chosen
  /// once per host rather than redrawn every report.
  bool constant = false;
  /// Simulation value range for numeric metrics.
  double sim_lo = 0.0;
  double sim_hi = 1.0;
  /// Fixed value for string metrics.
  std::string_view string_value = {};
};

/// The full built-in catalogue (33 metrics).
std::span<const MetricDef> standard_metrics();

/// Lookup by name; nullptr when unknown (user-defined metrics).
const MetricDef* find_metric_def(std::string_view name);

/// Number of numeric metrics in the catalogue (what summaries carry).
std::size_t numeric_metric_count();

}  // namespace ganglia::gmon
