#include "gmon/gmond.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace ganglia::gmon {

namespace {
Cluster cluster_attrs_from(const GmondConfig& config) {
  Cluster c;
  c.name = config.cluster_name;
  c.owner = config.owner;
  c.latlong = config.latlong;
  c.url = config.url;
  return c;
}
}  // namespace

GmondAgent::GmondAgent(GmondConfig config, std::string host_name,
                       std::string host_ip, sim::MulticastBus& bus,
                       sim::EventQueue& events)
    : config_(std::move(config)),
      host_name_(std::move(host_name)),
      host_ip_(std::move(host_ip)),
      bus_(bus),
      events_(events),
      state_(cluster_attrs_from(config_)),
      rng_(SplitMix64(config_.seed).next() ^
           std::hash<std::string>{}(host_name_)) {
  const auto catalogue = standard_metrics();
  current_values_.resize(catalogue.size());
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    const MetricDef& def = catalogue[i];
    current_values_[i] = rng_.next_range(def.sim_lo, def.sim_hi);
  }
}

GmondAgent::~GmondAgent() { stop(); }

void GmondAgent::start() {
  if (running_) return;
  running_ = true;
  *alive_ = true;
  started_at_ = events_.clock().now_seconds();
  member_id_ = bus_.join(
      [this](int, std::string_view payload) { on_datagram(payload); });
  // First heartbeat fires immediately so neighbours learn of us at once;
  // metrics stagger over their own intervals.
  send_heartbeat();
  schedule_heartbeat();
  const auto catalogue = standard_metrics();
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    send_metric(i);
    schedule_metric(i);
  }
}

void GmondAgent::stop() {
  if (!running_) return;
  running_ = false;
  *alive_ = false;
  bus_.leave(member_id_);
  member_id_ = -1;
  // Scheduled closures see *alive_ == false and do nothing.
  alive_ = std::make_shared<bool>(false);
}

void GmondAgent::set_metric_override(std::string_view name, double value) {
  overrides_[std::string(name)] = value;
  announce_metric(name);
}

void GmondAgent::clear_metric_override(std::string_view name) {
  overrides_.erase(std::string(name));
  announce_metric(name);
}

void GmondAgent::announce_metric(std::string_view name) {
  // Real gmond multicasts immediately when a value changes beyond its
  // threshold; a pinned/unpinned value is exactly such a change.
  if (!running_) return;
  const auto catalogue = standard_metrics();
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    if (catalogue[i].name == name) {
      send_metric(i);
      return;
    }
  }
}

void GmondAgent::publish_user_metric(const Metric& metric) {
  if (!running_) return;
  MetricMessage msg{host_name_, host_ip_, metric};
  msg.metric.source = "gmetric";
  bus_.publish(member_id_, encode(msg));
}

std::string GmondAgent::report_xml() {
  return state_.report_xml(events_.clock().now_seconds(), config_.version);
}

net::ServiceFn GmondAgent::service() {
  return [this](std::string_view) -> Result<std::string> {
    if (!running_) return Err(Errc::refused, host_name_ + " gmond stopped");
    return report_xml();
  };
}

void GmondAgent::on_datagram(std::string_view payload) {
  auto decoded = decode(payload);
  if (!decoded.ok()) return;  // undecodable datagrams are dropped
  state_.apply(*decoded, events_.clock().now_seconds());
  if (config_.host_dmax != 0) {
    state_.expire(events_.clock().now_seconds());
  }
}

void GmondAgent::send_heartbeat() {
  if (!running_) return;
  HeartbeatMessage msg{host_name_, host_ip_, started_at_};
  bus_.publish(member_id_, encode(msg));
}

void GmondAgent::schedule_heartbeat() {
  // Jittered so a cluster's agents do not synchronise their sends.
  const double interval =
      static_cast<double>(config_.heartbeat_interval_s) *
      rng_.next_range(0.8, 1.0);
  auto alive = alive_;
  events_.schedule_after(seconds_to_us(interval), [this, alive] {
    if (!*alive) return;
    send_heartbeat();
    schedule_heartbeat();
  });
}

double GmondAgent::draw_value(const MetricDef& def, double current) {
  // Bounded random walk: step up to 15% of the range per send.
  const double span = def.sim_hi - def.sim_lo;
  const double next =
      current + span * 0.15 * (rng_.next_double() * 2.0 - 1.0);
  return std::clamp(next, def.sim_lo, def.sim_hi);
}

Metric GmondAgent::make_metric(const MetricDef& def, double value) const {
  Metric m;
  m.name = std::string(def.name);
  m.units = std::string(def.units);
  m.slope = def.slope;
  m.tmax = def.tmax;
  m.dmax = def.dmax;
  m.source = "gmond";
  switch (def.type) {
    case MetricType::string_t:
      m.set_string(std::string(def.string_value));
      break;
    case MetricType::float_t:
    case MetricType::double_t: {
      m.type = def.type;
      m.numeric = value;
      m.value = strprintf("%.2f", value);
      break;
    }
    case MetricType::timestamp:
    case MetricType::int8:
    case MetricType::int16:
    case MetricType::int32:
      m.set_int(static_cast<std::int64_t>(value), def.type);
      break;
    case MetricType::uint8:
    case MetricType::uint16:
    case MetricType::uint32:
      m.set_uint(static_cast<std::uint64_t>(value), def.type);
      break;
  }
  return m;
}

void GmondAgent::send_metric(std::size_t metric_index) {
  if (!running_) return;
  const MetricDef& def = standard_metrics()[metric_index];
  if (!def.constant) {
    current_values_[metric_index] =
        draw_value(def, current_values_[metric_index]);
  }
  double value = current_values_[metric_index];
  if (auto it = overrides_.find(std::string(def.name)); it != overrides_.end()) {
    value = it->second;
  }
  // heartbeat-the-metric carries uptime seconds in real gmond.
  if (def.name == "heartbeat") {
    value = static_cast<double>(events_.clock().now_seconds() - started_at_);
  }
  MetricMessage msg{host_name_, host_ip_, make_metric(def, value)};
  bus_.publish(member_id_, encode(msg));
}

void GmondAgent::schedule_metric(std::size_t metric_index) {
  const MetricDef& def = standard_metrics()[metric_index];
  // Send somewhere inside the soft-state window so TMAX is never exceeded.
  const double interval =
      static_cast<double>(def.tmax) * rng_.next_range(0.5, 0.9);
  auto alive = alive_;
  events_.schedule_after(seconds_to_us(interval), [this, alive, metric_index] {
    if (!*alive) return;
    send_metric(metric_index);
    schedule_metric(metric_index);
  });
}

}  // namespace ganglia::gmon
