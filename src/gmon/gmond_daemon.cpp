#include "gmon/gmond_daemon.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace ganglia::gmon {

namespace {
Cluster cluster_attrs_from(const GmondConfig& config) {
  Cluster c;
  c.name = config.cluster_name;
  c.owner = config.owner;
  c.latlong = config.latlong;
  c.url = config.url;
  return c;
}
}  // namespace

GmondDaemon::GmondDaemon(GmondDaemonConfig config)
    : config_(std::move(config)),
      state_(cluster_attrs_from(config_.base)),
      rng_(SplitMix64(config_.seed).next() ^
           std::hash<std::string>{}(config_.host_name)) {
  const auto catalogue = standard_metrics();
  synthetic_values_.reserve(catalogue.size());
  for (const MetricDef& def : catalogue) {
    synthetic_values_.push_back(rng_.next_range(def.sim_lo, def.sim_hi));
  }
  next_send_s_.assign(catalogue.size(), 0.0);
}

GmondDaemon::~GmondDaemon() { stop(); }

Status GmondDaemon::start(net::Transport& tcp_transport, Clock& clock) {
  if (running_.exchange(true)) return {};

  auto channel = UdpMeshChannel::open(config_.channel);
  if (!channel.ok()) {
    running_ = false;
    return channel.error();
  }
  channel_ = std::move(*channel);

  if (config_.use_proc) {
    sampler_ = std::make_unique<ProcSampler>(clock);
    (void)sampler_->sample();  // prime rate counters
  }

  // Inbound datagrams fold into the shared, mutex-protected cluster state.
  Status receiver = channel_->start_receiver([this, &clock](std::string_view d) {
    auto decoded = decode(d);
    if (decoded.ok()) state_.apply(*decoded, clock.now_seconds());
  });
  if (!receiver.ok()) {
    running_ = false;
    return receiver;
  }

  // The TCP report port: any node serves the whole cluster.
  Status tcp = tcp_server_.start(
      tcp_transport, config_.tcp_bind,
      [this, &clock](std::string_view) -> Result<std::string> {
        return state_.report_xml(clock.now_seconds(), config_.base.version);
      });
  if (!tcp.ok()) {
    running_ = false;
    channel_->close();
    return tcp;
  }

  sender_ = std::thread([this, &clock] { sender_loop(&clock); });
  GLOG(info, "gmond") << config_.host_name << ": udp " << udp_address()
                      << ", tcp " << tcp_address();
  return {};
}

void GmondDaemon::stop() {
  if (!running_.exchange(false)) return;
  if (sender_.joinable()) sender_.join();
  tcp_server_.stop();
  if (channel_) channel_->close();
}

void GmondDaemon::send_all_metrics(std::int64_t now) {
  const auto catalogue = standard_metrics();
  std::vector<Metric> proc_metrics;
  if (sampler_ != nullptr) proc_metrics = sampler_->sample();

  const double now_d = static_cast<double>(now);
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    if (now_d < next_send_s_[i]) continue;
    const MetricDef& def = catalogue[i];

    Metric metric;
    bool have = false;
    if (sampler_ != nullptr) {
      for (Metric& m : proc_metrics) {
        if (m.name == def.name) {
          metric = std::move(m);
          have = true;
          break;
        }
      }
    }
    if (!have) {
      // Synthetic random walk inside the catalogue range.
      if (!def.constant) {
        const double span = def.sim_hi - def.sim_lo;
        synthetic_values_[i] =
            std::clamp(synthetic_values_[i] +
                           span * 0.15 * (rng_.next_double() * 2.0 - 1.0),
                       def.sim_lo, def.sim_hi);
      }
      metric.name = std::string(def.name);
      metric.units = std::string(def.units);
      metric.slope = def.slope;
      metric.tmax = def.tmax;
      metric.dmax = def.dmax;
      if (def.type == MetricType::string_t) {
        metric.set_string(std::string(def.string_value));
      } else if (def.type == MetricType::float_t ||
                 def.type == MetricType::double_t) {
        metric.type = def.type;
        metric.numeric = synthetic_values_[i];
        metric.value = strprintf("%.2f", synthetic_values_[i]);
      } else {
        metric.set_uint(static_cast<std::uint64_t>(synthetic_values_[i]),
                        def.type);
      }
    }
    (void)channel_->publish(
        encode(MetricMessage{config_.host_name, config_.host_ip, metric}));
    next_send_s_[i] = now_d + static_cast<double>(def.tmax) *
                                  rng_.next_range(0.5, 0.9) *
                                  config_.timer_scale;
  }
}

void GmondDaemon::sender_loop(Clock* clock) {
  const std::int64_t started = clock->now_seconds();
  while (running_.load()) {
    const std::int64_t now = clock->now_seconds();
    const double now_d = static_cast<double>(now);

    if (now_d >= next_heartbeat_s_) {
      (void)channel_->publish(encode(
          HeartbeatMessage{config_.host_name, config_.host_ip, started}));
      next_heartbeat_s_ =
          now_d + static_cast<double>(config_.base.heartbeat_interval_s) *
                      rng_.next_range(0.8, 1.0) * config_.timer_scale;
    }
    send_all_metrics(now);
    if (config_.base.host_dmax != 0) state_.expire(now);

    // Tick at ~50 ms so scaled timers stay responsive; stop() is prompt.
    clock->sleep_us(50'000);
  }
}

}  // namespace ganglia::gmon
