// Gmon multicast wire format.
//
// Gmond agents announce themselves with heartbeats and publish each metric
// on its own soft-state timer; neighbours fold the datagrams into their
// redundant copy of cluster state.  Real gmond encodes with XDR; we use an
// equivalent compact little-endian binary format (kind tag + length-prefixed
// strings).  Datagram sizes are what the bandwidth accounting experiment
// measures, so the encoding is kept tight like the original's.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::gmon {

/// Periodic liveness announcement (also carries identity so new listeners
/// can bootstrap a host entry without a priori knowledge).
struct HeartbeatMessage {
  std::string host_name;
  std::string host_ip;
  std::int64_t gmond_started = 0;
};

/// One metric value from one host.
struct MetricMessage {
  std::string host_name;
  std::string host_ip;
  Metric metric;  ///< tn is implicitly 0 at send time
};

using WireMessage = std::variant<HeartbeatMessage, MetricMessage>;

std::string encode(const HeartbeatMessage& msg);
std::string encode(const MetricMessage& msg);

/// Decode a datagram.  Fails on truncation or unknown kind (a well-formed
/// monitor ignores undecodable datagrams rather than crashing).
Result<WireMessage> decode(std::string_view datagram);

}  // namespace ganglia::gmon
