// Gmond: the local-area monitor agent.
//
// One agent runs per cluster node.  Agents multicast heartbeats and metric
// values on soft-state timers and listen to their neighbours rather than
// polling them, so the network is redundant and leaderless: *any* node can
// serve the complete cluster report over TCP, which is what lets the
// wide-area gmetad fail over between nodes (paper fig 1).
//
// Agents run on the discrete-event simulator (sim::EventQueue +
// sim::MulticastBus): start() schedules the first timers and every timer
// reschedules itself, exactly like the daemon's main loop.  Metric values
// are drawn from the catalogue's simulation ranges with a bounded random
// walk; tests can pin values with set_metric_override, and one-shot
// user-defined key-value pairs publish like the real `gmetric` tool.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/rng.hpp"
#include "gmon/cluster_state.hpp"
#include "gmon/metrics.hpp"
#include "net/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/multicast.hpp"

namespace ganglia::gmon {

struct GmondConfig {
  std::string cluster_name = "unspecified";
  std::string owner;
  std::string latlong;
  std::string url;
  std::uint32_t heartbeat_interval_s = 20;
  /// Seconds after which silent hosts are forgotten entirely (0 = never;
  /// they are then reported as down, preserving forensic history).
  std::uint32_t host_dmax = 0;
  std::string version = "2.5.4";
  std::uint64_t seed = 1;
};

class GmondAgent {
 public:
  GmondAgent(GmondConfig config, std::string host_name, std::string host_ip,
             sim::MulticastBus& bus, sim::EventQueue& events);
  ~GmondAgent();

  GmondAgent(const GmondAgent&) = delete;
  GmondAgent& operator=(const GmondAgent&) = delete;

  /// Join the multicast group and schedule heartbeat + metric timers.
  void start();

  /// Leave the group and stop all timers (simulates killing the daemon).
  void stop();

  bool running() const noexcept { return running_; }
  const std::string& host_name() const noexcept { return host_name_; }

  /// Pin a metric to a fixed value (tests / injecting load patterns).
  void set_metric_override(std::string_view name, double value);
  void clear_metric_override(std::string_view name);

  /// One-shot user-defined metric, like the real `gmetric` tool: multicast
  /// immediately with the caller's TMAX/DMAX soft-state bounds.
  void publish_user_metric(const Metric& metric);

  /// This agent's redundant view of the whole cluster.
  ClusterState& state() noexcept { return state_; }
  const ClusterState& state() const noexcept { return state_; }

  /// Full cluster report (the gmond TCP port payload).
  std::string report_xml();

  /// Service wrapper for in-memory transports: any write is ignored, the
  /// response is the full cluster report.
  net::ServiceFn service();

 private:
  void on_datagram(std::string_view payload);
  void announce_metric(std::string_view name);
  void send_heartbeat();
  void send_metric(std::size_t metric_index);
  void schedule_heartbeat();
  void schedule_metric(std::size_t metric_index);
  double draw_value(const MetricDef& def, double current);
  Metric make_metric(const MetricDef& def, double value) const;

  GmondConfig config_;
  std::string host_name_;
  std::string host_ip_;
  sim::MulticastBus& bus_;
  sim::EventQueue& events_;
  ClusterState state_;
  Rng rng_;
  int member_id_ = -1;
  bool running_ = false;
  std::int64_t started_at_ = 0;
  /// Lifetime guard: scheduled closures hold this; stale ones no-op.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(false);

  std::vector<double> current_values_;  ///< per catalogue metric
  std::unordered_map<std::string, double> overrides_;
};

}  // namespace ganglia::gmon
