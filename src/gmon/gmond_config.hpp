// gmond.conf parsing for the threaded GmondDaemon.
//
// Mirrors real gmond's configuration surface for the parts this
// reproduction implements: cluster identity, the UDP channel (bind +
// unicast send peers), the TCP report port, soft-state timing, and the
// value source (/proc or synthetic).
#pragma once

#include "common/result.hpp"
#include "gmon/gmond_daemon.hpp"

namespace ganglia::gmon {

/// Parse gmond.conf syntax:
///
///   # comment
///   cluster_name "meteor"
///   owner "SDSC"
///   latlong "N32.87 W117.22"
///   url "http://meteor.example/"
///   host_name "compute-0-0"            # defaults to the machine hostname
///   host_ip 10.0.0.7                   # defaults to 127.0.0.1
///   udp_bind 0.0.0.0:8649              # defaults to 127.0.0.1:0
///   udp_peer 10.0.0.1:8649             # repeatable: the unicast mesh
///   tcp_bind 0.0.0.0:8650              # XML report port
///   heartbeat_interval 20
///   host_dmax 0                        # forget silent hosts after N s
///   use_proc on                        # sample /proc (off = synthetic)
///   timer_scale 1.0                    # compress soft-state timers (tests)
Result<GmondDaemonConfig> parse_gmond_config(std::string_view text);

/// Load + parse a config file.
Result<GmondDaemonConfig> load_gmond_config_file(const std::string& path);

}  // namespace ganglia::gmon
