// Linux /proc metric collection — what a real gmond samples on a live host.
//
// The quickstart example monitors the machine it runs on: this sampler
// reads /proc/loadavg, /proc/meminfo, /proc/stat, /proc/net/dev and
// /proc/uptime plus uname(2), and renders them as catalogue metrics.  CPU
// percentages and network rates need two observations; the first sample
// reports only instantaneous gauges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::gmon {

class ProcSampler {
 public:
  /// `root` overrides the /proc mount (tests point it at a fixture tree).
  explicit ProcSampler(Clock& clock, std::string root = "/proc");

  /// True when the proc tree is readable on this system.
  bool available() const;

  /// Collect current metrics.  Rate metrics (cpu_*, bytes_*, pkts_*)
  /// appear from the second call onwards.
  std::vector<Metric> sample();

 private:
  struct CpuTimes {
    std::uint64_t user = 0, nice = 0, system = 0, idle = 0, iowait = 0;
    std::uint64_t total() const { return user + nice + system + idle + iowait; }
  };
  struct NetTotals {
    std::uint64_t bytes_in = 0, bytes_out = 0, pkts_in = 0, pkts_out = 0;
  };

  std::optional<std::string> read_file(const std::string& name) const;
  std::optional<CpuTimes> read_cpu() const;
  std::optional<NetTotals> read_net() const;

  Clock& clock_;
  std::string root_;
  std::optional<CpuTimes> prev_cpu_;
  std::optional<NetTotals> prev_net_;
  TimeUs prev_sample_us_ = 0;
};

}  // namespace ganglia::gmon
