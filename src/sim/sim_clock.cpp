#include "sim/sim_clock.hpp"

// Header-only today; this translation unit pins the vtable.
namespace ganglia::sim {}
