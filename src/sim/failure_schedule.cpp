#include "sim/failure_schedule.hpp"

#include <algorithm>

namespace ganglia::sim {

void FailureSchedule::add_outage(TimeUs from_us, TimeUs to_us,
                                 const std::string& address,
                                 net::FailurePolicy::Kind kind) {
  net::FailurePolicy down;
  down.kind = kind;
  add(from_us, address, down);
  add(to_us, address, net::FailurePolicy{});  // recover
}

std::size_t FailureSchedule::apply_due(TimeUs now,
                                       net::InMemTransport& transport) {
  if (!sorted_) {
    std::stable_sort(events_.begin() + static_cast<std::ptrdiff_t>(applied_),
                     events_.end(),
                     [](const FailureEvent& a, const FailureEvent& b) {
                       return a.at_us < b.at_us;
                     });
    sorted_ = true;
  }
  std::size_t fired = 0;
  while (applied_ < events_.size() && events_[applied_].at_us <= now) {
    const FailureEvent& ev = events_[applied_];
    transport.set_failure(ev.address, ev.policy);
    ++applied_;
    ++fired;
  }
  return fired;
}

}  // namespace ganglia::sim
