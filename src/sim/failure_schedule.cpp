#include "sim/failure_schedule.hpp"

#include <algorithm>

namespace ganglia::sim {

void FailureSchedule::add_outage(TimeUs from_us, TimeUs to_us,
                                 const std::string& address,
                                 net::FailurePolicy::Kind kind) {
  net::FailurePolicy down;
  down.kind = kind;
  add(from_us, address, down);
  add(to_us, address, net::FailurePolicy{});  // recover
}

void FailureSchedule::add_partition(TimeUs from_us, TimeUs to_us,
                                    const std::vector<std::string>& addresses) {
  const int group = next_partition_group_++;
  for (const std::string& address : addresses) {
    events_.push_back({from_us, address, net::FailurePolicy{}, true, group});
    events_.push_back({to_us, address, net::FailurePolicy{}, true, 0});
  }
  sorted_ = false;
}

std::size_t FailureSchedule::apply_due(TimeUs now,
                                       net::InMemTransport& transport) {
  if (!sorted_) {
    std::stable_sort(events_.begin() + static_cast<std::ptrdiff_t>(applied_),
                     events_.end(),
                     [](const FailureEvent& a, const FailureEvent& b) {
                       return a.at_us < b.at_us;
                     });
    sorted_ = true;
  }
  std::size_t fired = 0;
  while (applied_ < events_.size() && events_[applied_].at_us <= now) {
    const FailureEvent& ev = events_[applied_];
    if (ev.is_group_change) {
      transport.set_group(ev.address, ev.group);
    } else {
      transport.set_failure(ev.address, ev.policy);
    }
    ++applied_;
    ++fired;
  }
  return fired;
}

}  // namespace ganglia::sim
