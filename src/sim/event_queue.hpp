// Discrete-event scheduler driving simulated gmon clusters.
//
// Each gmond agent schedules its own metric-collection and multicast send
// events; the queue executes them in timestamp order, advancing the shared
// SimClock.  Ties break by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/sim_clock.hpp"

namespace ganglia::sim {

class EventQueue {
 public:
  explicit EventQueue(SimClock& clock) : clock_(clock) {}

  using Action = std::function<void()>;

  /// Schedule `action` to run at absolute simulated time `at_us`.
  /// Events in the past run at the current time.
  void schedule_at(TimeUs at_us, Action action);

  /// Schedule relative to now.
  void schedule_after(TimeUs delay_us, Action action) {
    schedule_at(clock_.now_us() + delay_us, std::move(action));
  }

  /// Run events until the queue is empty or the clock passes `until_us`.
  /// Returns the number of events executed.  Events scheduled during the
  /// run participate.
  std::size_t run_until(TimeUs until_us);

  /// Run exactly one event if any is pending; returns false when empty.
  bool step();

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  SimClock& clock() { return clock_; }

 private:
  struct Event {
    TimeUs at;
    std::uint64_t seq;  // FIFO among equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  SimClock& clock_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ganglia::sim
