// Scripted failure timelines.
//
// A reproduction of a fault-tolerance claim needs scripted faults: this
// schedule applies InMemTransport failure policies at simulated times, so a
// test can declare "the meteor head node stops at t+30s and recovers at
// t+120s" and then assert that gmetad failed over and that the RRDs carry
// unknown records during the outage.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/inmem.hpp"

namespace ganglia::sim {

struct FailureEvent {
  TimeUs at_us = 0;
  std::string address;
  net::FailurePolicy policy;  ///< Kind::none means "recover"
  /// Partition-group events reassign the address's group instead of
  /// setting a policy (group 0 = rejoin the default group).
  bool is_group_change = false;
  int group = 0;
};

class FailureSchedule {
 public:
  void add(TimeUs at_us, std::string address, net::FailurePolicy policy) {
    events_.push_back({at_us, std::move(address), policy, false, 0});
    sorted_ = false;
  }

  /// Convenience: stop a node during [from_us, to_us).
  void add_outage(TimeUs from_us, TimeUs to_us, const std::string& address,
                  net::FailurePolicy::Kind kind = net::FailurePolicy::Kind::refuse);

  /// Group partition: isolate `addresses` from everything outside the set
  /// during [from_us, to_us).  Members of the set still reach each other —
  /// one call instead of N² pairwise policy events.  Each call uses a
  /// fresh group id, so disjoint concurrent partitions stay disjoint.
  void add_partition(TimeUs from_us, TimeUs to_us,
                     const std::vector<std::string>& addresses);

  /// Apply every not-yet-applied event with at_us <= now to the transport.
  /// Returns how many fired.
  std::size_t apply_due(TimeUs now, net::InMemTransport& transport);

  std::size_t pending() const { return events_.size() - applied_; }

 private:
  std::vector<FailureEvent> events_;
  std::size_t applied_ = 0;
  int next_partition_group_ = 1;
  bool sorted_ = true;
};

}  // namespace ganglia::sim
