#include "sim/event_queue.hpp"

namespace ganglia::sim {

void EventQueue::schedule_at(TimeUs at_us, Action action) {
  const TimeUs now = clock_.now_us();
  heap_.push(Event{at_us < now ? now : at_us, next_seq_++, std::move(action)});
}

std::size_t EventQueue::run_until(TimeUs until_us) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= until_us) {
    // Copy out before pop: the action may schedule more events.
    Event ev{heap_.top().at, heap_.top().seq,
             std::move(const_cast<Event&>(heap_.top()).action)};
    heap_.pop();
    clock_.set_us(ev.at);
    ev.action();
    ++executed;
  }
  if (clock_.now_us() < until_us) clock_.set_us(until_us);
  return executed;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  Event ev{heap_.top().at, heap_.top().seq,
           std::move(const_cast<Event&>(heap_.top()).action)};
  heap_.pop();
  clock_.set_us(ev.at);
  ev.action();
  return true;
}

}  // namespace ganglia::sim
