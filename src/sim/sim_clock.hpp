// Simulated clock.
//
// Experiments cover hours of monitoring (the paper uses 60-minute timing
// windows); the simulated clock lets the whole tree live that hour in
// milliseconds.  sleep_us() advances time instead of blocking, so
// single-threaded drivers that interleave "sleep" and work replay the real
// daemons' schedules faithfully.
#pragma once

#include <mutex>

#include "common/clock.hpp"

namespace ganglia::sim {

class SimClock final : public Clock {
 public:
  /// Starts at `epoch_us` (default: a fixed, reproducible 2003-era epoch in
  /// homage to the paper's publication date).
  explicit SimClock(TimeUs epoch_us = kDefaultEpochUs) : now_(epoch_us) {}

  static constexpr TimeUs kDefaultEpochUs =
      1'062'000'000 * kMicrosPerSecond;  // 2003-08-27T16:00:00Z

  TimeUs now_us() override {
    std::lock_guard lock(mutex_);
    return now_;
  }

  /// Simulated sleep: advances the clock.
  void sleep_us(TimeUs duration) override { advance_us(duration); }

  void advance_us(TimeUs delta) {
    std::lock_guard lock(mutex_);
    if (delta > 0) now_ += delta;
  }
  void advance_seconds(double s) { advance_us(seconds_to_us(s)); }

  void set_us(TimeUs t) {
    std::lock_guard lock(mutex_);
    now_ = t;
  }

 private:
  std::mutex mutex_;
  TimeUs now_;
};

}  // namespace ganglia::sim
