#include "sim/multicast.hpp"

#include <algorithm>

namespace ganglia::sim {

int MulticastBus::join(Handler handler) {
  const int id = next_id_++;
  members_.emplace(id, Member{std::move(handler), false});
  return id;
}

void MulticastBus::leave(int member_id) { members_.erase(member_id); }

void MulticastBus::set_isolated(int member_id, bool isolated) {
  if (auto it = members_.find(member_id); it != members_.end()) {
    it->second.isolated = isolated;
  }
}

void MulticastBus::publish(int sender_id, std::string_view payload) {
  auto sender = members_.find(sender_id);
  if (sender == members_.end() || sender->second.isolated) return;

  ++stats_.datagrams_sent;
  stats_.bytes_sent += payload.size();

  // Deliver in member-id order for determinism.  Collect ids first: a
  // handler may join/leave members.
  std::vector<int> ids;
  ids.reserve(members_.size());
  for (const auto& [id, member] : members_) {
    if (!member.isolated) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (int id : ids) {
    if (loss_rate_ > 0.0 && rng_.next_bool(loss_rate_)) {
      ++stats_.datagrams_dropped;
      continue;
    }
    auto it = members_.find(id);
    if (it == members_.end() || it->second.isolated) continue;
    ++stats_.datagrams_delivered;
    stats_.bytes_delivered += payload.size();
    it->second.handler(sender_id, payload);
  }
}

}  // namespace ganglia::sim
