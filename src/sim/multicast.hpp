// Simulated intra-cluster multicast channel.
//
// Gmon agents exchange metrics over a UDP multicast backbone; every agent
// hears its neighbours and so holds redundant global state (paper §1).
// This bus models that channel: publish delivers the datagram to every
// joined member (loopback included, as real gmond hears itself), with
// optional independent per-receiver loss and per-member isolation
// (partition).  Byte counters support the "<56 Kbps on a 128-node cluster"
// bandwidth check.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace ganglia::sim {

class MulticastBus {
 public:
  /// Handler invoked for each delivered datagram.
  using Handler = std::function<void(int sender_id, std::string_view payload)>;

  explicit MulticastBus(std::uint64_t loss_seed = 0x9e3779b9u)
      : rng_(loss_seed) {}

  /// Join the channel; returns this member's id.
  int join(Handler handler);

  /// Leave permanently (a departed node).
  void leave(int member_id);

  /// Isolate or rejoin a member: an isolated member neither receives nor
  /// delivers (models a node dropping off the network).
  void set_isolated(int member_id, bool isolated);

  /// Fraction of deliveries independently dropped (UDP is lossy).
  void set_loss_rate(double p) { loss_rate_ = p; }

  /// Send a datagram to the group.
  void publish(int sender_id, std::string_view payload);

  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_delivered = 0;
    std::uint64_t datagrams_dropped = 0;
    std::uint64_t bytes_sent = 0;        ///< payload bytes put on the wire
    std::uint64_t bytes_delivered = 0;   ///< sum over receivers
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  std::size_t member_count() const { return members_.size(); }

 private:
  struct Member {
    Handler handler;
    bool isolated = false;
  };
  std::unordered_map<int, Member> members_;
  int next_id_ = 0;
  double loss_rate_ = 0.0;
  Rng rng_;
  Stats stats_;
};

}  // namespace ganglia::sim
