// Authority URLs.
//
// Every N-level gmetad advertises a URL pointer to itself; upstream nodes
// attach that pointer to the summaries they keep, so a viewer can walk the
// distributed tree towards full resolution (paper §2.2).  We parse just the
// subset of URL syntax Ganglia uses: scheme://host[:port][/path].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ganglia {

struct Uri {
  std::string scheme;   ///< e.g. "gmetad", "http"
  std::string host;     ///< hostname or address
  std::uint16_t port = 0;  ///< 0 when absent
  std::string path;     ///< always begins with '/' ("/" when absent)

  std::string to_string() const;
  bool operator==(const Uri&) const = default;
};

/// Parse "scheme://host[:port][/path]".  Returns nullopt on syntax errors
/// (missing scheme, empty host, non-numeric/overflowing port).
std::optional<Uri> parse_uri(std::string_view text);

}  // namespace ganglia
