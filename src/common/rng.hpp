// Deterministic random number generation.
//
// The paper's pseudo-gmond emulators choose metric values "randomly"; for a
// reproducible experimental harness we need every run to draw the same
// sequence.  xoshiro256** is tiny, fast, and splittable by reseeding from a
// SplitMix64 stream, so each simulated host gets an independent stream from
// one experiment seed.
#pragma once

#include <cstdint>

namespace ganglia {

/// SplitMix64: used to expand one seed into many.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) via Lemire's multiply-shift (bound > 0).
  constexpr std::uint32_t next_below(std::uint32_t bound) {
    const std::uint64_t x = next_u64() >> 32;
    return static_cast<std::uint32_t>((x * bound) >> 32);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_range(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// True with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ganglia
