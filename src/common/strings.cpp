#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace ganglia {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim, bool skip_empty) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      std::string_view field = s.substr(start, i - start);
      if (!skip_empty || !field.empty()) out.push_back(field);
      start = i + 1;
    }
  }
  // "a," yields {"a",""}; "" yields {""} unless skip_empty.
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  s = trim(s);
  if (s.empty() || s.front() == '-') return std::nullopt;
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+.
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string format_double(double v) {
  // Try increasing precision until the value round-trips, mirroring what
  // modern serialisers do; 17 significant digits always round-trips.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    auto [ptr, ec] = std::from_chars(buf, buf + std::strlen(buf), back);
    (void)ptr;
    if (ec == std::errc{} && back == v) break;
  }
  return buf;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace ganglia
