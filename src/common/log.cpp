#include "common/log.hpp"

#include <cstdio>
#include <ctime>
#include <mutex>

namespace ganglia {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::warn)};
}  // namespace detail

void set_log_level(LogLevel level) noexcept {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}

namespace detail {
namespace {
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void log_emit(LogLevel level, std::string_view component, std::string_view msg) {
  if (!log_enabled(level)) return;
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm_utc{};
  gmtime_r(&ts.tv_sec, &tm_utc);
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "%02d:%02d:%02d.%03ld", tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, ts.tv_nsec / 1000000);
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s %.*s: %.*s\n", stamp, level_tag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace ganglia
