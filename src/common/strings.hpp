// Small string utilities shared across modules (no locale surprises,
// no allocations where a view suffices).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ganglia {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character.  Empty fields are preserved unless
/// skip_empty is set ("a,,b" -> {"a","","b"} / {"a","b"}).
std::vector<std::string_view> split(std::string_view s, char delim,
                                    bool skip_empty = false);

/// Split on arbitrary whitespace runs, skipping empties.
std::vector<std::string_view> split_ws(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Strict integer / double parsing: entire (trimmed) input must convert.
std::optional<std::int64_t> parse_i64(std::string_view s);
std::optional<std::uint64_t> parse_u64(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Shortest round-trippable representation of a double ("%.17g" trimmed),
/// used when serialising metric values to XML.
std::string format_double(double v);

/// printf-style convenience returning std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ganglia
