#include "common/uri.hpp"

#include "common/strings.hpp"

namespace ganglia {

std::string Uri::to_string() const {
  std::string s = scheme + "://" + host;
  if (port != 0) s += ":" + std::to_string(port);
  s += path.empty() ? "/" : path;
  return s;
}

std::optional<Uri> parse_uri(std::string_view text) {
  text = trim(text);
  const auto scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) return std::nullopt;

  Uri uri;
  uri.scheme = std::string(text.substr(0, scheme_end));
  std::string_view rest = text.substr(scheme_end + 3);

  const auto path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  uri.path = path_start == std::string_view::npos
                 ? "/"
                 : std::string(rest.substr(path_start));

  const auto colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    auto port = parse_u64(authority.substr(colon + 1));
    if (!port || *port == 0 || *port > 65535) return std::nullopt;
    uri.port = static_cast<std::uint16_t>(*port);
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) return std::nullopt;
  uri.host = std::string(authority);
  return uri;
}

}  // namespace ganglia
