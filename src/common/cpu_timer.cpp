#include "common/cpu_timer.hpp"

#include <ctime>

namespace ganglia {

namespace {
std::int64_t clock_ns(clockid_t id) {
  std::timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}
}  // namespace

std::int64_t thread_cpu_ns() { return clock_ns(CLOCK_THREAD_CPUTIME_ID); }
std::int64_t process_cpu_ns() { return clock_ns(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace ganglia
