// Minimal expected-like result type used throughout the library.
//
// We deliberately avoid exceptions on hot monitoring paths (poll loops,
// query serving): a wide-area monitor treats remote failure as a normal
// input, not an exceptional one.  Result<T> carries either a value or an
// Error with a category and human-readable message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ganglia {

/// Broad failure categories.  Benches and retry logic branch on these;
/// the message is for humans and logs.
enum class Errc {
  ok = 0,
  invalid_argument,
  parse_error,
  not_found,
  io_error,
  timeout,
  refused,        ///< connection refused / trust rejected
  closed,         ///< peer closed mid-stream (intermittent failure)
  unsupported,
  exhausted,      ///< all failover candidates failed
  would_block,    ///< non-blocking op has no data/space right now
  internal,
};

/// Human-readable name of an error category.
constexpr const char* errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::parse_error: return "parse_error";
    case Errc::not_found: return "not_found";
    case Errc::io_error: return "io_error";
    case Errc::timeout: return "timeout";
    case Errc::refused: return "refused";
    case Errc::closed: return "closed";
    case Errc::unsupported: return "unsupported";
    case Errc::exhausted: return "exhausted";
    case Errc::would_block: return "would_block";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

/// An error: category plus context message.
struct Error {
  Errc code = Errc::internal;
  std::string message;

  std::string to_string() const {
    std::string s = errc_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

/// Result<T>: either a T or an Error.  Accessors assert on misuse.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}           // NOLINT(implicit)
  Result(Error err) : state_(std::move(err)) {}           // NOLINT(implicit)

  bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const Error& error() const& {
    assert(!ok());
    return std::get<Error>(state_);
  }
  Errc code() const noexcept {
    return ok() ? Errc::ok : std::get<Error>(state_).code;
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> state_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;                                     // ok
  Status(Error err) : err_(std::move(err)), ok_(false) {} // NOLINT(implicit)
  Status(Errc code, std::string msg)
      : err_{code, std::move(msg)}, ok_(false) {}

  static Status success() { return Status{}; }

  bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return err_;
  }
  Errc code() const noexcept { return ok_ ? Errc::ok : err_.code; }
  std::string to_string() const { return ok_ ? "ok" : err_.to_string(); }

 private:
  Error err_{};
  bool ok_ = true;
};

/// Convenience factory: Err(Errc::timeout, "poll of {} timed out").
inline Error Err(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace ganglia
