// Tiny leveled, thread-safe logger.
//
// Monitoring daemons log from several threads (pollers, servers, alarm
// engine); messages are assembled off-lock and emitted under one mutex so
// lines never interleave.  The global level is atomic so hot paths can
// early-out without synchronisation.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace ganglia {

enum class LogLevel : int { trace = 0, debug, info, warn, error, off };

/// Process-wide minimum level.  Defaults to warn so tests/benches are quiet.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
extern std::atomic<int> g_log_level;
void log_emit(LogLevel level, std::string_view component, std::string_view msg);

/// Stream-style builder; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { log_emit(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= detail::g_log_level.load(std::memory_order_relaxed);
}

}  // namespace ganglia

// Usage: GLOG(info, "gmetad") << "polled " << n << " sources";
#define GLOG(level, component)                                      \
  if (!::ganglia::log_enabled(::ganglia::LogLevel::level)) {        \
  } else                                                            \
    ::ganglia::detail::LogLine(::ganglia::LogLevel::level, component)
