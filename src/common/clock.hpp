// Clock abstraction.
//
// Every time-dependent component (soft-state membership, pollers, RRD
// archives, failure retry) takes a Clock&, so tests and benches can run the
// whole monitoring tree on a simulated clock and advance hours of "wall
// time" in microseconds of real time.  The simulated implementation lives in
// src/sim; WallClock here is the production implementation.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace ganglia {

/// Monotonic-ish epoch time in whole microseconds.  Signed so durations and
/// differences are natural; 64 bits covers ~292k years.
using TimeUs = std::int64_t;

constexpr TimeUs kMicrosPerSecond = 1'000'000;

constexpr TimeUs seconds_to_us(double s) {
  return static_cast<TimeUs>(s * static_cast<double>(kMicrosPerSecond));
}
constexpr double us_to_seconds(TimeUs us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary (per-clock) epoch.
  virtual TimeUs now_us() = 0;

  /// Block (or simulate blocking) for the given duration.
  virtual void sleep_us(TimeUs duration) = 0;

  /// Whole seconds, the granularity most Ganglia timestamps use.
  std::int64_t now_seconds() { return now_us() / kMicrosPerSecond; }
};

/// Real time, backed by std::chrono::system_clock (Ganglia timestamps are
/// wall-clock UNIX times).
class WallClock final : public Clock {
 public:
  TimeUs now_us() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
  void sleep_us(TimeUs duration) override {
    if (duration > 0) std::this_thread::sleep_for(std::chrono::microseconds(duration));
  }

  /// Shared process-wide instance for call-sites without injected clocks.
  static WallClock& instance() {
    static WallClock clock;
    return clock;
  }
};

}  // namespace ganglia
