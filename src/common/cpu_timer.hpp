// CPU-time accounting for the scalability experiments.
//
// The paper measures per-gmetad %CPU with `ps` over a 60-minute window.  We
// reproduce the same quantity with CLOCK_THREAD_CPUTIME_ID: each simulated
// gmetad charges the CPU seconds its processing consumed to its own meter,
// and the bench normalises by the simulated wall window.  This keeps the
// measurement valid when six gmetads share one process (and one core).
#pragma once

#include <cstdint>

namespace ganglia {

/// CPU nanoseconds consumed by the *calling thread* so far.
std::int64_t thread_cpu_ns();

/// CPU nanoseconds consumed by the whole process so far.
std::int64_t process_cpu_ns();

/// Simple accumulating CPU meter with start/stop semantics, used where the
/// metered region spans multiple scopes.
class CpuMeter {
 public:
  /// Raw accumulator, for ScopedCpuMeter.
  std::int64_t& raw_ns() { return total_ns_; }
  void start() { start_ = thread_cpu_ns(); running_ = true; }
  void stop() {
    if (running_) total_ns_ += thread_cpu_ns() - start_;
    running_ = false;
  }
  void add_ns(std::int64_t ns) { total_ns_ += ns; }
  void reset() { total_ns_ = 0; running_ = false; }

  std::int64_t total_ns() const { return total_ns_; }
  double total_seconds() const { return static_cast<double>(total_ns_) * 1e-9; }

 private:
  std::int64_t total_ns_ = 0;
  std::int64_t start_ = 0;
  bool running_ = false;
};

/// Scoped meter: accumulates the calling thread's CPU time between
/// construction and destruction into a counter.
class ScopedCpuMeter {
 public:
  explicit ScopedCpuMeter(std::int64_t& accumulator_ns)
      : accumulator_(accumulator_ns), start_(thread_cpu_ns()) {}
  explicit ScopedCpuMeter(CpuMeter& meter)
      : ScopedCpuMeter(meter.raw_ns()) {}
  ~ScopedCpuMeter() { accumulator_ += thread_cpu_ns() - start_; }
  ScopedCpuMeter(const ScopedCpuMeter&) = delete;
  ScopedCpuMeter& operator=(const ScopedCpuMeter&) = delete;

 private:
  std::int64_t& accumulator_;
  std::int64_t start_;
};

}  // namespace ganglia
