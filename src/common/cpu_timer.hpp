// CPU-time accounting for the scalability experiments.
//
// The paper measures per-gmetad %CPU with `ps` over a 60-minute window.  We
// reproduce the same quantity with CLOCK_THREAD_CPUTIME_ID: each simulated
// gmetad charges the CPU seconds its processing consumed to its own meter,
// and the bench normalises by the simulated wall window.  This keeps the
// measurement valid when six gmetads share one process (and one core).
//
// The meter is shared-state under the concurrent poll pipeline: several
// worker threads charge the same gmetad's meter while a query thread reads
// it, so the accumulator is atomic (relaxed — it is a counter, not a
// synchronisation point).
#pragma once

#include <atomic>
#include <cstdint>

namespace ganglia {

/// CPU nanoseconds consumed by the *calling thread* so far.
std::int64_t thread_cpu_ns();

/// CPU nanoseconds consumed by the whole process so far.
std::int64_t process_cpu_ns();

/// Accumulating CPU meter.  add_ns()/total_ns() are thread-safe; the
/// start()/stop() convenience pair is for single-threaded metered regions.
class CpuMeter {
 public:
  void start() { start_ = thread_cpu_ns(); running_ = true; }
  void stop() {
    if (running_) add_ns(thread_cpu_ns() - start_);
    running_ = false;
  }
  void add_ns(std::int64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void reset() {
    total_ns_.store(0, std::memory_order_relaxed);
    running_ = false;
  }

  std::int64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return static_cast<double>(total_ns()) * 1e-9;
  }

 private:
  std::atomic<std::int64_t> total_ns_{0};
  std::int64_t start_ = 0;
  bool running_ = false;
};

/// Scoped meter: accumulates the calling thread's CPU time between
/// construction and destruction into a CpuMeter (thread-safe) or a plain
/// accumulator (single-threaded callers).
class ScopedCpuMeter {
 public:
  explicit ScopedCpuMeter(std::int64_t& accumulator_ns)
      : plain_(&accumulator_ns), start_(thread_cpu_ns()) {}
  explicit ScopedCpuMeter(CpuMeter& meter)
      : meter_(&meter), start_(thread_cpu_ns()) {}
  ~ScopedCpuMeter() {
    const std::int64_t delta = thread_cpu_ns() - start_;
    if (meter_ != nullptr) {
      meter_->add_ns(delta);
    } else {
      *plain_ += delta;
    }
  }
  ScopedCpuMeter(const ScopedCpuMeter&) = delete;
  ScopedCpuMeter& operator=(const ScopedCpuMeter&) = delete;

 private:
  CpuMeter* meter_ = nullptr;
  std::int64_t* plain_ = nullptr;
  std::int64_t start_;
};

}  // namespace ganglia
