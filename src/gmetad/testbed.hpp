// Experiment testbed: declaratively wire a monitoring tree.
//
// Builds the paper's experimental apparatus in one process: pseudo-gmond
// cluster emulators and gmetad monitors connected over the deterministic
// in-memory transport, driven in rounds of the 15-second summarisation
// time scale.  Within a round children poll before parents so fresh data
// propagates leafward-to-rootward exactly once, mirroring the steady state
// of free-running daemons.
//
// fig2_spec() reproduces the tree of paper figure 2 — six gmetads
// (root←{ucsd,sdsc}, ucsd←{physics,math}, sdsc←{attic}) with two monitored
// clusters each, twelve clusters total; the sdsc node's clusters are named
// meteor and nashi as in the paper's figure 3.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gmetad/gmetad.hpp"
#include "gmon/pseudo_gmond.hpp"
#include "net/inmem.hpp"
#include "sim/sim_clock.hpp"

namespace ganglia::gmetad {

struct TestbedNodeSpec {
  std::string name;
  std::vector<std::string> children;        ///< child gmetad names
  std::vector<std::string> cluster_names;   ///< local clusters (leaf sources)
};

struct TestbedSpec {
  std::vector<TestbedNodeSpec> nodes;  ///< first entry is the root
  std::size_t hosts_per_cluster = 100;
  Mode mode = Mode::n_level;
  std::int64_t poll_interval_s = 15;
  std::uint64_t seed = 2003;
  bool archive_enabled = true;
  /// Wire every edge (gmond→gmetad and gmetad→gmetad) with a delta
  /// federation endpoint alongside the XML dump address, so polls run
  /// incrementally with automatic full-XML fallback.
  bool federation = false;
  /// Emulate gmond soft-state broadcast timers in the pseudo-gmonds (the
  /// workload shape deltas are designed for) instead of redrawing every
  /// value each report.
  bool soft_state = false;
};

/// The monitoring tree of paper figure 2.
TestbedSpec fig2_spec(std::size_t hosts_per_cluster, Mode mode);

class Testbed {
 public:
  explicit Testbed(TestbedSpec spec);

  /// Advance the clock one poll interval and poll every gmetad,
  /// children before parents.
  void run_round();

  /// Convenience: run several rounds (a timing window).
  void run_rounds(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) run_round();
  }

  Gmetad& node(const std::string& name);
  gmon::PseudoGmond& cluster(const std::string& name);
  net::InMemTransport& transport() noexcept { return transport_; }
  sim::SimClock& clock() noexcept { return clock_; }
  const TestbedSpec& spec() const noexcept { return spec_; }
  std::size_t rounds_run() const noexcept { return rounds_; }

  /// Node names in polling (children-first) order.
  const std::vector<std::string>& poll_order() const noexcept {
    return poll_order_;
  }

  /// CPU seconds this node's processing consumed so far.
  double cpu_seconds(const std::string& name);

  /// %CPU over the elapsed simulated window — the paper's y-axis: CPU time
  /// consumed divided by simulated wall-clock time.
  double cpu_percent(const std::string& name);

  /// Resize every monitored cluster (figure 6's sweep variable).
  void resize_clusters(std::size_t hosts_per_cluster);

  /// Reset all CPU meters and the window start (begin a timing window).
  void begin_window();

  static std::string gmond_address(const std::string& cluster) {
    return cluster + ".gmon:8649";
  }
  static std::string dump_address(const std::string& node) {
    return node + ".gmeta:8651";
  }
  static std::string interactive_address(const std::string& node) {
    return node + ".gmeta:8652";
  }
  static std::string gmond_federation_address(const std::string& cluster) {
    return cluster + ".gmon:8655";
  }
  static std::string federation_address(const std::string& node) {
    return node + ".gmeta:8655";
  }

 private:
  TestbedSpec spec_;
  sim::SimClock clock_;
  net::InMemTransport transport_;
  std::map<std::string, std::unique_ptr<gmon::PseudoGmond>> clusters_;
  std::map<std::string, std::unique_ptr<Gmetad>> gmetads_;
  std::vector<std::string> poll_order_;
  std::size_t rounds_ = 0;
  TimeUs window_start_us_ = 0;
};

}  // namespace ganglia::gmetad
