#include "gmetad/gmetad.hpp"

#include <algorithm>
#include <latch>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "gmetad/render/fragments.hpp"
#include "gmetad/render/report_builder.hpp"
#include "net/framing.hpp"
#include "xml/writer.hpp"

namespace ganglia::gmetad {

namespace {
std::size_t resolve_poll_threads(const GmetadConfig& config) {
  if (config.poll_threads != 0) return config.poll_threads;
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(std::max<std::size_t>(config.sources.size(), 1), hw);
}
}  // namespace

Gmetad::Gmetad(GmetadConfig config, net::Transport& transport, Clock& clock)
    : config_(std::move(config)),
      transport_(transport),
      clock_(clock),
      archiver_(ArchiverOptions{config_.archive_step_s,
                                config_.archive_step_s * 8,
                                config_.archive_dir,
                                config_.archive_flush_interval_s}),
      engine_(store_),
      joins_(config_.join_expiry_s, config_.join_max_children) {
  for (const DataSourceConfig& ds : config_.sources) {
    sources_.push_back(std::make_shared<DataSource>(finish_source_config(ds)));
  }
  if (const std::size_t width = resolve_poll_threads(config_); width > 1) {
    pool_ = std::make_unique<PollPool>(width);
  }

  fed::PublisherOptions fed_opts;
  fed_opts.max_frame = config_.federation_max_frame;
  fed_opts.max_digest_bytes = config_.gossip_max_digest;
  publisher_ = std::make_unique<fed::Publisher>(
      [this] { return current_doc(); }, fed_opts);

  if (!config_.gossip_bind.empty()) {
    gossip::AgentOptions opts;
    opts.id = config_.grid_name;
    opts.address = config_.gossip_bind;
    opts.seeds = config_.gossip_seeds;
    opts.interval_us = config_.gossip_interval_s * kMicrosPerSecond;
    opts.fanout = config_.gossip_fanout;
    opts.t_fail_us = config_.gossip_t_fail_s * kMicrosPerSecond;
    opts.t_cleanup_us = config_.gossip_t_cleanup_s * kMicrosPerSecond;
    opts.connect_timeout_us = config_.connect_timeout_s * kMicrosPerSecond;
    opts.delta = config_.gossip_delta;
    opts.max_digest_bytes = config_.gossip_max_digest;
    opts.resync_backoff_rounds =
        static_cast<std::uint64_t>(config_.gossip_resync_backoff);
    // Independent deterministic stream per member id.
    std::uint64_t seed = 0xcbf29ce484222325ULL;
    for (const char c : config_.grid_name) {
      seed = (seed ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    opts.rng_seed = seed;
    opts.meta["source"] = config_.grid_name;
    opts.meta["xml"] = config_.xml_bind;
    if (!config_.authority.empty()) opts.meta["authority"] = config_.authority;
    if (!config_.gossip_parent.empty()) {
      opts.meta["parent"] = config_.gossip_parent;
    }
    if (!config_.federation_bind.empty()) {
      // Advertise the delta port so aggregators discovered through
      // membership poll incrementally instead of re-fetching full XML.
      opts.meta["fed"] = config_.federation_bind;
    }
    if (!config_.standby_for.empty()) {
      failover_ =
          std::make_unique<gossip::FailoverController>(config_.standby_for);
      failover_->set_on_promote([this](const std::string& primary) {
        GLOG(warn, "gmetad") << config_.grid_name << ": primary '" << primary
                             << "' declared DEAD; standing in for its subtree";
      });
      failover_->set_on_demote([this](const std::string& primary) {
        GLOG(info, "gmetad") << config_.grid_name << ": primary '" << primary
                             << "' recovered; handing its subtree back";
      });
    }
    gossip_ =
        std::make_unique<gossip::Agent>(std::move(opts), transport_, clock_);
    if (failover_) {
      gossip_->set_event_handler([this](const gossip::MemberEvent& event) {
        failover_->observe(event);
      });
    }
    if (config_.gossip_delta && config_.gossip_piggyback) {
      // Both halves of piggybacking: outbound digests ride our live poll
      // sessions (carrier), inbound ones arrive through the publisher on
      // the federation listener a parent is already polling.
      gossip_->set_carrier(
          [this](const std::string& peer_address, const std::string& payload) {
            return piggyback_digest(peer_address, payload);
          });
      publisher_->set_digest_handler([this](std::string_view payload) {
        return gossip_->handle_digest_payload(payload);
      });
    }
  }
}

Gmetad::~Gmetad() { stop(); }

DataSourceConfig Gmetad::finish_source_config(DataSourceConfig ds) const {
  if (!config_.federation_enabled) ds.federation_address.clear();
  ds.federation_max_frame = config_.federation_max_frame;
  ds.federation_resync_backoff_s = config_.federation_resync_backoff_s;
  return ds;
}

QueryContext Gmetad::context() {
  QueryContext ctx;
  ctx.grid_name = config_.grid_name;
  ctx.authority = config_.authority;
  ctx.mode = config_.mode;
  ctx.now = clock_.now_seconds();
  return ctx;
}

// ----------------------------------------------------------------- polling

std::vector<Gmetad::PollResult> Gmetad::poll_once() {
  const std::int64_t now = clock_.now_seconds();
  prune_expired_children(now);

  const auto to_poll = snapshot_sources();
  std::vector<PollResult> results(to_poll.size());
  if (pool_ && to_poll.size() > 1) {
    // Fan the round out; each worker writes its own slot (disjoint
    // indices), so results need no lock and stay in source order.
    std::latch done(static_cast<std::ptrdiff_t>(to_poll.size()));
    for (std::size_t i = 0; i < to_poll.size(); ++i) {
      pool_->submit([this, &results, &done, source = to_poll[i], now, i] {
        results[i] = poll_source(*source, now);
        done.count_down();
      });
    }
    done.wait();
  } else {
    for (std::size_t i = 0; i < to_poll.size(); ++i) {
      results[i] = poll_source(*to_poll[i], now);
    }
  }

  finish_round(now);
  return results;
}

Gmetad::PollResult Gmetad::poll_source(DataSource& source, std::int64_t now) {
  PollResult result;
  result.source = source.name();
  // The fetch is wait, not work: metering starts once bytes are in hand.
  // (Over the in-memory fabric the child produces its dump inside our
  // read() and charges its *own* meter for it.)  The delta session passes
  // our meter down so decode/apply CPU is charged without the I/O waits.
  auto fetched = source.fetch(transport_,
                              config_.connect_timeout_s * kMicrosPerSecond,
                              now, &cpu_meter_);
  ScopedCpuMeter meter(cpu_meter_);
  if (!fetched.ok()) {
    result.error = fetched.error().to_string();
    // Keep serving the previous data, marked unreachable; RRD heartbeats
    // lapse on their own, writing the forensic unknown records.
    auto stale = SourceSnapshot::unreachable_from(store_.get(source.name()),
                                                 source.name(), now);
    render::prime_fragments(*stale, config_.mode);
    store_.publish(std::move(stale));
    return result;
  }
  result.bytes = fetched->bytes;
  bytes_polled_.fetch_add(fetched->bytes, std::memory_order_relaxed);

  std::optional<Report> report;
  if (fetched->report.has_value()) {
    // Delta path: the session already holds the parsed document.
    report = std::move(fetched->report);
  } else {
    auto parsed = parse_report(fetched->body);
    if (!parsed.ok()) {
      result.error = parsed.error().to_string();
      auto stale = SourceSnapshot::unreachable_from(store_.get(source.name()),
                                                   source.name(), now);
      render::prime_fragments(*stale, config_.mode);
      store_.publish(std::move(stale));
      return result;
    }
    report = std::move(*parsed);
  }

  // "Gmeta only keeps numerical summaries of data from clusters it is
  // not an authority on": in N-level mode remote grids are reduced to
  // summary form before they ever enter the store, shrinking state and
  // archive load alike.  (The 1-level design keeps everything — that is
  // precisely its scalability defect.)
  if (config_.mode == Mode::n_level) {
    for (Grid& grid : report->grids) {
      if (!grid.is_summary_form()) {
        grid.summary = grid.summarize();
        grid.clusters.clear();
        grid.grids.clear();
      }
    }
  }

  // The 1-level design performs no summarisation during polling (the
  // frontend computed its own); N-level summarises eagerly here, on the
  // summarisation time scale.
  auto snapshot = std::make_shared<SourceSnapshot>(
      source.name(), std::move(*report), now,
      /*eager_summary=*/config_.mode == Mode::n_level);
  if (config_.archive_enabled) archive_snapshot(*snapshot);
  // Materialise the publish-time render fragments here, on the poll worker,
  // so the query path never pays for a full-tree serialisation (it splices
  // these bytes instead) — charged to this node's meter like any other
  // summarisation work.
  render::prime_fragments(*snapshot, config_.mode);
  // One atomic swap: queries never see a half-parsed source.
  store_.publish(std::move(snapshot));
  result.ok = true;
  return result;
}

void Gmetad::prune_expired_children(std::int64_t now) {
  std::vector<JoinRegistry::Child> expired;
  {
    // Prune the registry and drop the matching sources under one lock: a
    // JOIN arriving between the two would otherwise re-register the child
    // while we erase its source, leaving a registry entry with no source
    // until the next expiry.
    std::lock_guard lock(sources_mutex_);
    expired = joins_.prune(now);
    for (const JoinRegistry::Child& child : expired) {
      std::erase_if(sources_, [&](const std::shared_ptr<DataSource>& ds) {
        return ds->name() == child.request.name;
      });
    }
  }
  for (const JoinRegistry::Child& child : expired) {
    GLOG(info, "gmetad") << config_.grid_name << ": pruning silent child '"
                         << child.request.name << "'";
    {
      std::lock_guard lock(schedule_mutex_);
      schedule_.erase(child.request.name);
    }
    store_.remove(child.request.name);
  }
}

void Gmetad::finish_round(std::int64_t now) {
  // Root-of-this-node summary archive (the grid's own history).  Part of
  // the N-level design's summarisation work; 2.5.1 had no equivalent.
  if (config_.archive_enabled && config_.mode == Mode::n_level) {
    ScopedCpuMeter meter(cpu_meter_);
    SummaryInfo total;
    for (const auto& snapshot : store_.all()) total.merge(snapshot->summary());
    archiver_.record_summary(config_.grid_name, total, now);
  }
  if (post_poll_hook_) post_poll_hook_(now);
}

std::vector<std::shared_ptr<DataSource>> Gmetad::snapshot_sources() const {
  std::lock_guard lock(sources_mutex_);
  return sources_;
}

void Gmetad::archive_snapshot(const SourceSnapshot& snapshot) {
  const std::int64_t now = clock_.now_seconds();

  // N-level: every source gets a source-level summary archive.
  if (config_.mode == Mode::n_level) {
    archiver_.record_summary(snapshot.name(), snapshot.summary(), now);
  }

  // Full-detail clusters: per-host metric archives, plus (N-level only) a
  // cluster summary archive.
  for (const Cluster& cluster : snapshot.clusters()) {
    archiver_.record_cluster(snapshot.name(), cluster, now);
    if (config_.mode == Mode::n_level) {
      archiver_.record_summary(snapshot.name() + "/" + cluster.name,
                               snapshot.cluster_summary(cluster), now);
    }
  }

  for (const Grid& grid : snapshot.grids()) {
    if (config_.mode == Mode::one_level) {
      // 1-level design: archive the entire remote subtree at host
      // granularity — the duplicated archives of paper fig 3 (right).
      struct Walker {
        Archiver& archiver;
        const std::string& source;
        std::int64_t now;
        void walk(const Grid& g) {
          for (const Cluster& c : g.clusters) {
            archiver.record_cluster(source, c, now);
          }
          for (const Grid& child : g.grids) walk(child);
        }
      } walker{archiver_, snapshot.name(), now};
      walker.walk(grid);
    }
    // N-level: the source-level summary recorded above is all we keep for
    // grids we are not the authority on.
  }
}

// ------------------------------------------------------------ serving

std::string Gmetad::dump_xml() {
  ScopedCpuMeter meter(cpu_meter_);
  return engine_.dump(context());
}

Result<std::string> Gmetad::query(std::string_view line) {
  ScopedCpuMeter meter(cpu_meter_);
  return engine_.execute(line, context());
}

Result<RenderedQuery> Gmetad::query_rendered(std::string_view line,
                                             render::Format format) {
  ScopedCpuMeter meter(cpu_meter_);
  return engine_.execute_rendered(line, context(), format);
}

render::Deps Gmetad::render_meta(render::Backend& backend) {
  ScopedCpuMeter meter(cpu_meter_);
  ParsedQuery meta;
  meta.summary = true;
  std::size_t matches = 0;
  std::string redirect;
  return engine_.render_with(meta, context(), backend, matches, redirect);
}

Result<std::string> Gmetad::handle_join_line(std::string_view line) {
  auto request = parse_join_line(line, config_.join_key);
  if (!request.ok()) return request.error();
  const std::int64_t now = clock_.now_seconds();
  // Registry refresh and source insertion happen under the sources lock so
  // a concurrent prune cannot interleave between them.
  std::lock_guard lock(sources_mutex_);
  auto fresh = joins_.refresh(*request, now);
  if (!fresh.ok()) return fresh.error();
  if (*fresh) {
    GLOG(info, "gmetad") << config_.grid_name << ": child '" << request->name
                         << "' joined from " << request->address;
    DataSourceConfig ds;
    ds.name = request->name;
    ds.addresses = {request->address};
    sources_.push_back(
        std::make_shared<DataSource>(finish_source_config(std::move(ds))));
  }
  return std::string("OK\n");
}

Result<std::string> Gmetad::handle_interactive(std::string_view line) {
  ScopedCpuMeter meter(cpu_meter_);
  const std::string_view trimmed = trim(line);
  if (starts_with(trimmed, "JOIN ")) return handle_join_line(trimmed);
  if (starts_with(trimmed, "HISTORY ")) return handle_history_line(trimmed);
  return engine_.execute(trimmed, context());
}

Result<std::string> Gmetad::handle_history_line(std::string_view line) {
  const auto fields = split_ws(line);
  if (fields.size() != 4) {
    return Err(Errc::invalid_argument,
               "expected 'HISTORY <path> <start> <end>'");
  }
  const auto start = parse_i64(fields[2]);
  const auto end = parse_i64(fields[3]);
  if (!start || !end) {
    return Err(Errc::invalid_argument, "HISTORY start/end must be integers");
  }
  return history(fields[1], *start, *end);
}

Result<std::string> Gmetad::history(std::string_view path, std::int64_t start,
                                    std::int64_t end) {
  const auto segments = split(trim(path), '/', /*skip_empty=*/true);
  Result<rrd::Series> series = Err(Errc::invalid_argument, "");
  std::string metric_name;
  if (segments.size() == 4) {
    metric_name = std::string(segments[3]);
    series = archiver_.fetch_host_metric(
        std::string(segments[0]), std::string(segments[1]),
        std::string(segments[2]), metric_name, start, end);
  } else if (segments.size() == 2 || segments.size() == 3) {
    // Summary scope: "source/metric" or "source/cluster/metric".
    metric_name = std::string(segments.back());
    std::string scope(segments[0]);
    for (std::size_t i = 1; i + 1 < segments.size(); ++i) {
      scope += "/" + std::string(segments[i]);
    }
    series = archiver_.fetch_summary_metric(scope, metric_name, start, end);
  } else {
    return Err(Errc::invalid_argument,
               "history path must be /source/cluster/host/metric or "
               "/scope.../metric");
  }
  if (!series.ok()) return series.error();

  // <SERIES NAME=".." START=".." STEP=".." END=".." CF="AVERAGE">v v U v</SERIES>
  std::string out;
  xml::XmlWriter w(out);
  w.declaration();
  w.open("SERIES");
  w.attr("NAME", metric_name);
  w.attr("PATH", trim(path));
  w.attr("START", series->start);
  w.attr("STEP", series->step);
  w.attr("END", series->end);
  w.attr("CF", rrd::cf_name(series->cf));
  std::string body;
  for (std::size_t i = 0; i < series->values.size(); ++i) {
    if (i > 0) body += ' ';
    body += rrd::is_unknown(series->values[i]) ? "U"
                                               : format_double(series->values[i]);
  }
  w.text(body);
  w.close();
  return out;
}

net::ServiceFn Gmetad::dump_service() {
  return [this](std::string_view) -> Result<std::string> {
    return dump_xml();
  };
}

net::ServiceFn Gmetad::interactive_service() {
  return [this](std::string_view request) -> Result<std::string> {
    // The request may carry a trailing newline from read_line-style writers.
    return handle_interactive(request);
  };
}

// --------------------------------------------- delta federation (serving)

fed::Doc Gmetad::current_doc() {
  // Version fold: the exact store state a document renders from is pinned
  // by (structure version, every per-source publish version) — and by the
  // clock second, because LOCALTIME/TN attributes derive from now.  Equal
  // folds therefore mean byte-identical documents, which is the publisher's
  // contract; a fold miss merely rebuilds.
  std::uint64_t structure = 0;
  const auto versioned = store_.all_versioned(&structure);
  std::uint64_t fold = 0xcbf29ce484222325ULL;
  const auto mix = [&fold](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fold = (fold ^ (v & 0xff)) * 0x100000001b3ULL;
      v >>= 8;
    }
  };
  mix(structure);
  for (const Store::Versioned& v : versioned) mix(v.version);
  mix(static_cast<std::uint64_t>(clock_.now_seconds()));
  fold |= 1;  // 0 is the "no document yet" sentinel on the wire

  std::lock_guard lock(doc_mutex_);
  if (doc_cache_.report != nullptr && doc_cache_.version == fold) {
    return doc_cache_;
  }
  render::ReportBuilder builder;
  std::size_t matches = 0;
  std::string redirect;
  (void)engine_.render_with(ParsedQuery{}, context(), builder, matches,
                            redirect);
  doc_cache_.report = std::make_shared<const Report>(builder.take());
  doc_cache_.version = fold;
  return doc_cache_;
}

net::ServiceFn Gmetad::federation_service() {
  return [this](std::string_view request) -> Result<std::string> {
    ScopedCpuMeter meter(cpu_meter_);
    return publisher_->serve(request);
  };
}

std::string Gmetad::federation_address() const {
  return federation_listener_ ? federation_listener_->address()
                              : config_.federation_bind;
}

void Gmetad::handle_federation_connection(net::Stream& stream) {
  if (!peer_trusted(stream.peer_address())) {
    GLOG(warn, "gmetad") << config_.grid_name
                         << ": rejected untrusted federation peer "
                         << stream.peer_address();
    stream.close();
    return;
  }
  // Persistent session: one framed request, one framed response, repeat
  // until the peer disconnects (or framing breaks — the client resyncs).
  // A piggybacked membership digest is the one multi-frame request; it is
  // reassembled here so the publisher always sees a complete request.
  net::FrameReader reader(stream, config_.federation_max_frame);
  while (running_.load()) {
    auto frame = reader.next();
    if (!frame.ok()) break;
    std::string request;
    if (frame->type == gossip::kFrameDigestBegin) {
      auto payload =
          gossip::read_digest_frames(reader, *frame, config_.gossip_max_digest);
      if (!payload.ok()) break;
      gossip::put_digest_frames(request, *payload, config_.federation_max_frame);
    } else {
      net::put_frame(request, frame->type, frame->payload);
    }
    std::string response;
    {
      ScopedCpuMeter meter(cpu_meter_);
      response = publisher_->serve(request);
    }
    if (!stream.write_all(response).ok()) break;
  }
  stream.close();
}

std::optional<Result<std::string>> Gmetad::piggyback_digest(
    const std::string& peer_address, const std::string& payload) {
  if (!gossip_) return std::nullopt;
  // Gossip address -> the member's advertised delta endpoint -> the data
  // source already holding a session to it.  Any miss along the way means
  // no open channel, and the agent dials a gossip connection instead.
  std::string fed_address;
  for (const gossip::MemberEntry& member : gossip_->members()) {
    if (member.address != peer_address) continue;
    if (const auto fed = member.meta.find("fed"); fed != member.meta.end()) {
      fed_address = fed->second;
    }
    break;
  }
  if (fed_address.empty()) return std::nullopt;
  for (const auto& source : snapshot_sources()) {
    if (source->federation_address() != fed_address) continue;
    return source->piggyback_digest(
        transport_, config_.connect_timeout_s * kMicrosPerSecond, payload);
  }
  return std::nullopt;
}

Status Gmetad::send_join(const std::string& parent_interactive_address) {
  if (config_.join_key.empty()) {
    return Err(Errc::invalid_argument, "no join_key configured");
  }
  JoinRequest request;
  request.name = config_.grid_name;
  request.address = xml_address();
  request.authority = config_.authority;
  auto stream = transport_.connect(parent_interactive_address,
                                   config_.connect_timeout_s * kMicrosPerSecond);
  if (!stream.ok()) return stream.error();
  if (Status s = (*stream)->write_all(format_join_line(request, config_.join_key));
      !s.ok()) {
    return s;
  }
  auto reply = net::read_line(**stream);
  if (!reply.ok()) return reply.error();
  if (*reply != "OK") {
    return Err(Errc::refused, "parent rejected join: " + *reply);
  }
  return {};
}

// ------------------------------------------------------ gossip membership

void Gmetad::gossip_tick() {
  if (!gossip_) return;
  gossip_->tick();
  sync_membership_sources();
}

void Gmetad::sync_membership_sources() {
  if (!gossip_) return;

  // Desired child sources: every ALIVE member whose advertised parent is
  // either us (gossip_aggregate) or a primary we currently cover as a
  // standby.  The child names its aggregator — trust still points up the
  // tree, exactly like trusted_hosts.
  struct DesiredSource {
    std::string xml;
    std::string fed;  ///< delta endpoint ("" = XML polling only)
  };
  std::map<std::string, DesiredSource> desired;  // source name -> addresses
  for (const gossip::MemberEntry& member : gossip_->members()) {
    if (member.id == config_.grid_name) continue;
    if (member.state != gossip::MemberState::alive) continue;
    const auto parent = member.meta.find("parent");
    if (parent == member.meta.end()) continue;
    const bool mine =
        config_.gossip_aggregate && parent->second == config_.grid_name;
    const bool covered = failover_ && failover_->promoted(parent->second);
    if (!mine && !covered) continue;
    const auto xml = member.meta.find("xml");
    if (xml == member.meta.end()) continue;
    const auto source = member.meta.find("source");
    const std::string& name =
        source != member.meta.end() ? source->second : member.id;
    if (desired.size() < joins_.max_children()) {
      DesiredSource d;
      d.xml = xml->second;
      if (const auto fed = member.meta.find("fed");
          config_.federation_enabled && fed != member.meta.end()) {
        d.fed = fed->second;
      }
      desired.emplace(name, std::move(d));
    }
  }

  std::vector<std::string> dropped;
  std::lock_guard mlock(membership_mutex_);
  {
    std::lock_guard lock(sources_mutex_);
    for (const auto& [name, want] : desired) {
      const auto it = membership_sources_.find(name);
      if (it != membership_sources_.end() && it->second == want.xml) {
        // XML address unchanged; the advertised delta endpoint may still
        // have moved (set_federation_address is a no-op when it hasn't).
        for (const auto& ds : sources_) {
          if (ds->name() == name) ds->set_federation_address(want.fed);
        }
        continue;
      }
      if (it == membership_sources_.end()) {
        // Never shadow a statically configured or join-registered source.
        const bool taken = std::any_of(
            sources_.begin(), sources_.end(),
            [&](const std::shared_ptr<DataSource>& ds) {
              return ds->name() == name;
            });
        if (taken) continue;
        GLOG(info, "gmetad") << config_.grid_name << ": adopting source '"
                             << name << "' at " << want.xml
                             << " from gossip membership";
      } else {
        // The member came back on a new address: replace in place.
        std::erase_if(sources_, [&](const std::shared_ptr<DataSource>& ds) {
          return ds->name() == name;
        });
      }
      DataSourceConfig ds;
      ds.name = name;
      ds.addresses = {want.xml};
      ds.federation_address = want.fed;
      sources_.push_back(
          std::make_shared<DataSource>(finish_source_config(std::move(ds))));
      membership_sources_[name] = want.xml;
    }
    for (auto it = membership_sources_.begin();
         it != membership_sources_.end();) {
      if (desired.count(it->first) != 0) {
        ++it;
        continue;
      }
      GLOG(info, "gmetad") << config_.grid_name << ": dropping source '"
                           << it->first << "' (no longer in membership)";
      std::erase_if(sources_, [&](const std::shared_ptr<DataSource>& ds) {
        return ds->name() == it->first;
      });
      dropped.push_back(it->first);
      it = membership_sources_.erase(it);
    }
  }
  for (const std::string& name : dropped) {
    {
      std::lock_guard lock(schedule_mutex_);
      schedule_.erase(name);
    }
    store_.remove(name);
  }
}

// ------------------------------------------------------------- daemon mode

std::string Gmetad::xml_address() const {
  return xml_listener_ ? xml_listener_->address() : config_.xml_bind;
}

std::string Gmetad::interactive_address() const {
  return interactive_listener_ ? interactive_listener_->address()
                               : config_.interactive_bind;
}

bool Gmetad::peer_trusted(const std::string& peer) const {
  if (config_.trusted_hosts.empty()) return true;
  const auto colon = peer.rfind(':');
  const std::string host = peer.substr(0, colon);
  for (const std::string& trusted : config_.trusted_hosts) {
    if (trusted == host || trusted == peer) return true;
  }
  return false;
}

void Gmetad::handle_connection(net::Stream& stream, bool interactive) {
  if (!peer_trusted(stream.peer_address())) {
    GLOG(warn, "gmetad") << config_.grid_name << ": rejected untrusted peer "
                         << stream.peer_address();
    stream.close();
    return;
  }
  if (!interactive) {
    const std::string report = dump_xml();
    (void)stream.write_all(report);
    stream.close();
    return;
  }
  // Interactive: one query line, one response, close — clients read to EOF
  // to find the response boundary (the in-memory fabric behaves the same).
  auto line = net::read_line(stream);
  if (line.ok()) {
    auto response = handle_interactive(*line);
    if (response.ok()) {
      (void)stream.write_all(*response);
    } else {
      (void)stream.write_all("<!-- ERROR: " + response.error().to_string() +
                             " -->\n");
    }
  }
  stream.close();
}

Status Gmetad::start() {
  if (running_.exchange(true)) return {};

  if (!config_.archive_dir.empty()) {
    // Tolerant restore: cold starts and individually corrupt images are
    // not errors; only a real I/O failure reaches this warning.
    if (Status s = archiver_.load_from_disk(); !s.ok()) {
      GLOG(warn, "gmetad") << config_.grid_name
                           << ": archive restore failed: " << s.to_string();
    }
  }

  auto xml_listener = transport_.listen(config_.xml_bind);
  if (!xml_listener.ok()) {
    running_ = false;
    return xml_listener.error();
  }
  auto interactive_listener = transport_.listen(config_.interactive_bind);
  if (!interactive_listener.ok()) {
    running_ = false;
    return interactive_listener.error();
  }
  if (!config_.federation_bind.empty()) {
    auto federation_listener = transport_.listen(config_.federation_bind);
    if (!federation_listener.ok()) {
      running_ = false;
      return federation_listener.error();
    }
    federation_listener_ = std::move(*federation_listener);
  }
  xml_listener_ = std::move(*xml_listener);
  interactive_listener_ = std::move(*interactive_listener);
  if (config_.authority.empty()) {
    // Advertise the bound address so upstream summaries carry a usable
    // pointer to this node's higher-resolution view.
    config_.authority = "gmetad://" + xml_listener_->address() + "/";
  }

  if (gossip_) {
    // Advertise the *bound* XML address (resolves ephemeral ports) before
    // the first digest leaves this node.
    gossip_->set_self_meta("xml", xml_listener_->address());
    gossip_->set_self_meta("authority", config_.authority);
    if (federation_listener_) {
      gossip_->set_self_meta("fed", federation_listener_->address());
    }
    if (Status s = gossip_->start(); !s.ok()) {
      // Monitoring still works without membership; degrade loudly.
      GLOG(warn, "gmetad") << config_.grid_name
                           << ": gossip disabled: " << s.to_string();
    } else {
      GLOG(info, "gmetad") << config_.grid_name << ": gossiping on "
                           << gossip_->address();
    }
  }

  const auto accept_loop = [this](net::Listener* listener, bool interactive) {
    while (running_.load()) {
      auto stream = listener->accept();
      if (!stream.ok()) return;  // listener closed
      handle_connection(**stream, interactive);
    }
  };
  threads_.emplace_back(accept_loop, xml_listener_.get(), false);
  threads_.emplace_back(accept_loop, interactive_listener_.get(), true);
  if (federation_listener_) {
    // Federation connections are persistent (one parent holds its stream
    // across polls), so each gets its own handler thread; the accept loop
    // reaps finished handlers as new connections arrive.
    threads_.emplace_back([this] {
      while (running_.load()) {
        auto stream = federation_listener_->accept();
        if (!stream.ok()) return;
        std::shared_ptr<net::Stream> shared(std::move(*stream));
        std::lock_guard lock(fed_conns_mutex_);
        std::erase_if(fed_conns_, [](const FedConnection& c) {
          return c.done->load(std::memory_order_acquire);
        });
        FedConnection conn;
        conn.stream = shared;
        conn.done = std::make_shared<std::atomic<bool>>(false);
        conn.thread = std::jthread([this, shared, done = conn.done] {
          handle_federation_connection(*shared);
          done->store(true, std::memory_order_release);
        });
        fed_conns_.push_back(std::move(conn));
      }
    });
  }

  // Write-behind persistence: a background flusher persists dirty archives
  // every archive_flush_interval_s (no-op when unset or interval 0).
  if (!config_.archive_dir.empty()) (void)archiver_.start_flusher();

  // Poller thread: 100 ms due-time ticks.  Each source carries its own
  // next-due timestamp, so mixed poll_interval_s settings are honoured
  // individually instead of everything polling at the global minimum.
  threads_.emplace_back([this](std::stop_token token) {
    while (!token.stop_requested() && running_.load()) {
      tick_scheduler();
      clock_.sleep_us(kMicrosPerSecond / 10);
    }
  });
  GLOG(info, "gmetad") << config_.grid_name << ": serving dump on "
                       << xml_address() << ", queries on "
                       << interactive_address();
  return {};
}

void Gmetad::tick_scheduler() {
  const std::int64_t now = clock_.now_seconds();
  prune_expired_children(now);

  // Gossip rides the same due-time scheduler.  A round is a handful of
  // small exchanges (bounded by connect_timeout), cheap next to a poll.
  if (gossip_ && now >= next_gossip_due_s_) {
    next_gossip_due_s_ = now + std::max<std::int64_t>(1, config_.gossip_interval_s);
    gossip_tick();
  }

  const auto sources = snapshot_sources();

  // Keep idle delta sessions warm.  heartbeat() itself skips sources whose
  // session is busy or not established, so this is cheap; the in-flight
  // check just avoids dialing a source mid-poll.
  if (config_.federation_heartbeat_s > 0 && now >= next_heartbeat_due_s_) {
    next_heartbeat_due_s_ = now + config_.federation_heartbeat_s;
    for (const auto& source : sources) {
      bool busy = false;
      {
        std::lock_guard lock(schedule_mutex_);
        const auto it = schedule_.find(source->name());
        busy = it != schedule_.end() && it->second.in_flight;
      }
      if (!busy) {
        source->heartbeat(transport_,
                          config_.connect_timeout_s * kMicrosPerSecond);
      }
    }
  }

  std::vector<std::shared_ptr<DataSource>> due;
  {
    std::lock_guard lock(schedule_mutex_);
    for (const auto& source : sources) {
      SourceSchedule& entry = schedule_[source->name()];
      if (entry.in_flight || now < entry.next_due_s) continue;
      entry.in_flight = true;
      due.push_back(source);
    }
  }

  for (const auto& source : due) {
    auto task = [this, source] {
      const std::int64_t start_s = clock_.now_seconds();
      poll_source(*source, start_s);
      {
        std::lock_guard lock(schedule_mutex_);
        // find(), not operator[]: a prune may have erased this entry
        // while the poll was in flight, and it must stay erased.
        if (const auto it = schedule_.find(source->name());
            it != schedule_.end()) {
          it->second.in_flight = false;
          it->second.next_due_s = start_s + source->poll_interval_s();
        }
      }
      summary_dirty_.store(true, std::memory_order_relaxed);
    };
    if (pool_) {
      pool_->submit(std::move(task));
    } else {
      task();
    }
  }

  // Fold completed polls into the root summary (and fire the alarm hook)
  // at most once per tick, rather than once per source.
  if (summary_dirty_.exchange(false)) finish_round(now);
}

void Gmetad::stop() {
  if (!running_.exchange(false)) return;
  // Announce the departure while peers still answer: the LEFT tombstone
  // spares them the t_fail + t_cleanup detection wait.
  if (gossip_) gossip_->leave();
  if (xml_listener_) xml_listener_->close();
  if (interactive_listener_) interactive_listener_->close();
  if (federation_listener_) federation_listener_->close();
  {
    // Unblock federation handlers stuck in a read; their threads join when
    // the connection list is destroyed below.
    std::lock_guard lock(fed_conns_mutex_);
    for (FedConnection& conn : fed_conns_) {
      if (conn.stream) conn.stream->close();
    }
  }
  for (std::jthread& t : threads_) t.request_stop();
  threads_.clear();  // joins (including the federation accept loop)
  {
    std::vector<FedConnection> conns;
    {
      std::lock_guard lock(fed_conns_mutex_);
      conns.swap(fed_conns_);
    }
    conns.clear();  // joins the per-connection handlers
  }
  if (gossip_) gossip_->stop();
  xml_listener_.reset();
  interactive_listener_.reset();
  federation_listener_.reset();
  // Join the write-behind flusher *before* the final flush: the shutdown
  // flush must not race a periodic one, and a repeated stop() (or a stop()
  // racing an empty-dir cold start) is a silent no-op, not a warning.
  archiver_.stop_flusher();
  if (!config_.archive_dir.empty()) {
    if (Status s = archiver_.flush_to_disk(); !s.ok()) {
      GLOG(warn, "gmetad") << config_.grid_name
                           << ": archive flush failed: " << s.to_string();
    }
  }
}

std::vector<const DataSource*> Gmetad::sources() const {
  std::lock_guard lock(sources_mutex_);
  std::vector<const DataSource*> out;
  out.reserve(sources_.size());
  for (const auto& ds : sources_) out.push_back(ds.get());
  return out;
}

}  // namespace ganglia::gmetad
