// Gmetad configuration (gmetad.conf work-alike).
//
// The wide-area tree is configured per node: each gmetad names its grid,
// advertises an authority URL, and lists data sources.  A data source is an
// ordered list of redundant addresses — any gmon node can serve the whole
// cluster, so extra addresses are failover candidates (paper fig 1); a
// source pointing at another gmetad's XML port grafts that child's grid
// into this node's tree.  Trust edges are configured on the *child*: a
// parent's address must appear in trusted_hosts before the child will serve
// it ("we manually configure the unidirectional trust edges such that a
// child must explicitly trust its parent", paper §2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace ganglia::gmetad {

/// 1-level reports the union of children's data upstream and archives the
/// whole subtree; N-level summarises remote grids (the paper's designs
/// §2.1 vs §2.2-2.3).
enum class Mode { one_level, n_level };

struct DataSourceConfig {
  std::string name;                     ///< cluster or child-grid name
  std::vector<std::string> addresses;   ///< failover candidates, in order
  std::int64_t poll_interval_s = 15;
  /// Delta federation endpoint of this source ("host:port"; empty = poll
  /// the XML dump port only).  Configured with a `fed=host:port` token on
  /// the data_source line, or discovered through gossip metadata.
  std::string federation_address;
  /// Per-source copies of the global federation knobs (filled by Gmetad).
  std::size_t federation_max_frame = 4u << 20;
  std::int64_t federation_resync_backoff_s = 60;
};

struct GmetadConfig {
  std::string grid_name = "unspecified";
  std::string authority;                ///< URL advertised upstream
  Mode mode = Mode::n_level;
  std::vector<DataSourceConfig> sources;
  std::vector<std::string> trusted_hosts;  ///< empty = trust everyone
  std::string xml_bind = "127.0.0.1:8651";
  std::string interactive_bind = "127.0.0.1:8652";
  std::int64_t connect_timeout_s = 10;
  /// Poll pipeline width: how many sources are fetched/parsed/archived
  /// concurrently.  0 = auto (min(#sources, hardware threads)); 1 =
  /// sequential (the pre-pipeline behaviour).
  std::size_t poll_threads = 0;
  bool archive_enabled = true;
  std::int64_t archive_step_s = 15;
  /// Directory for persistent RRD images (empty = in-memory only, the
  /// paper's tmpfs-style configuration).  Loaded on start, flushed on stop.
  std::string archive_dir;
  /// Write-behind flush cadence: a background flusher persists dirty
  /// archives every this many seconds while the daemon runs (0 = flush
  /// only on stop).  Ignored when archive_dir is empty.
  std::int64_t archive_flush_interval_s = 30;
  /// HTTP gateway bind ("host:port"; empty = gateway disabled).  The
  /// gateway itself lives in src/http and layers on top of gmetad; these
  /// knobs only carry the operator's wishes to whoever wires it up.
  std::string http_bind;
  /// Response-cache TTL floor in seconds (0 = epoch-only invalidation).
  std::int64_t http_cache_ttl_s = 15;
  /// Concurrent-connection cap.  The event-driven server carries idle
  /// keep-alive connections in a few KB each, so the default is C10K.
  std::int64_t http_max_connections = 10000;
  /// Handler worker threads for the HTTP reactor (0 = auto).
  std::size_t http_event_threads = 0;
  /// Idle/slow-loris deadline: a connection with no read/write progress
  /// for this long is closed.
  std::int64_t http_idle_timeout_s = 30;
  /// /api/v1/query execution budget: max relation rows one plan may scan
  /// (one per host considered plus one per RRD row a time-range read
  /// covers).  Breaches fail with a structured 422, never a slow worker.
  std::int64_t query_max_scan = 1'000'000;
  /// /api/v1/query budget: max distinct groups one plan may accumulate.
  std::int64_t query_max_groups = 10'000;
  /// /api/v1/query budget: max rendered result size in bytes.
  std::int64_t query_max_result_bytes = 1 << 20;
  /// Shared secret for the soft-state join protocol (empty = joins refused).
  std::string join_key;
  /// A dynamically joined child is pruned after this silence (seconds).
  std::int64_t join_expiry_s = 240;
  /// Cap on dynamically joined children (join protocol + gossip topology).
  std::size_t join_max_children = 256;

  // -- gossip membership (federated gmetads) -------------------------------
  /// Gossip endpoint ("host:port"; empty = membership gossip disabled).
  std::string gossip_bind;
  /// Bootstrap peers' gossip addresses (probed periodically, so a healed
  /// partition or restarted node always finds its way back).
  std::vector<std::string> gossip_seeds;
  std::int64_t gossip_interval_s = 2;   ///< seconds between gossip rounds
  std::size_t gossip_fanout = 3;        ///< peers contacted per round
  std::int64_t gossip_t_fail_s = 20;    ///< silence before SUSPECT
  std::int64_t gossip_t_cleanup_s = 20; ///< SUSPECT→DEAD grace
  /// Adopt data sources for ALIVE members advertising parent=<our grid>.
  bool gossip_aggregate = false;
  /// Primary aggregator id this node advertises as its parent (the child
  /// configures who may aggregate it — the paper's trust direction).
  std::string gossip_parent;
  /// Primary ids this node stands by for: when one is declared DEAD, we
  /// adopt its children's sources until it recovers.
  std::vector<std::string> standby_for;
  /// Gossip with binary digest-delta sessions (per-peer cursors, only
  /// changed rows on the wire) instead of full-table text digests.
  bool gossip_delta = true;
  /// Offer outbound digests a ride on live federation poll sessions
  /// before dialling a gossip connection (needs gossip_delta).
  bool gossip_piggyback = true;
  /// Per-exchange digest payload cap (bytes); oversize full tables answer
  /// with a structured refusal and the pair falls back to text digests.
  std::size_t gossip_max_digest = 4u << 20;
  /// Rounds a peer stays on text digests after a failed binary exchange.
  std::int64_t gossip_resync_backoff = 8;

  // -- delta federation (streaming incremental polls) ----------------------
  /// Master switch for the delta *client*: when on, sources with a
  /// federation address are polled over the binary delta protocol first,
  /// falling back to the XML dump port on any failure.
  bool federation_enabled = true;
  /// Delta federation listener ("host:port"; empty = delta serving off —
  /// this node then answers only legacy full-XML polls).
  std::string federation_bind;
  /// Ping idle delta sessions this often to keep streams warm (0 = never).
  std::int64_t federation_heartbeat_s = 30;
  /// Largest frame either side may send on a delta session (bytes).
  std::size_t federation_max_frame = 4u << 20;
  /// After a delta poll fails, stay on the XML dump path for this many
  /// seconds before retrying the delta session (0 = retry immediately).
  std::int64_t federation_resync_backoff_s = 60;

  /// Config-declared alarm rules, evaluated after every poll round (the
  /// paper's §4 alarm mechanism, wired into the daemon).
  struct AlarmRuleConfig {
    std::string name;
    std::string metric;
    std::string comparison;  ///< one of > >= < <= == !=
    double threshold = 0;
    std::int64_t hold_s = 0;
    std::optional<double> clear_threshold;
    std::string host_pattern;     ///< regex; empty = all hosts
    std::string cluster_pattern;  ///< regex; empty = all clusters
  };
  std::vector<AlarmRuleConfig> alarms;
};

/// Parse gmetad.conf syntax:
///
///   # comment
///   gridname "SDSC"
///   authority "gmetad://sdsc.example:8651/"
///   mode n-level                        # or: one-level
///   data_source "meteor" 15 m0:8649 m1:8649
///   data_source "attic" attic-gmeta:8651        # default interval
///   data_source "nashi" 15 fed=nashi:8655 nashi:8651  # delta endpoint + XML fallback
///   trusted_hosts 10.0.0.1 parent.example
///   xml_port 8651                        # or xml_bind host:port
///   interactive_port 8652
///   http_port 8653                       # or http_bind host:port; HTTP gateway
///   http_cache_ttl 15                    # gateway response-cache TTL floor (s)
///   http_max_connections 10000
///   http_event_threads 0                 # handler workers (0 = auto)
///   http_idle_timeout 30                 # idle/slow-loris deadline (s)
///   query_max_scan 1000000               # /api/v1/query budget: rows scanned per plan
///   query_max_groups 10000               # /api/v1/query budget: distinct groups per plan
///   query_max_result_bytes 1048576       # /api/v1/query budget: rendered result bytes
///   connect_timeout 10
///   poll_threads 4                       # 0 = auto, 1 = sequential
///   archive off                          # or: archive on
///   archive_step 15
///   archive_dir "/var/lib/gmetad/rrds"   # persist archives across restarts
///   archive_flush_interval 30            # write-behind cadence (s; 0 = on stop only)
///   join_key "sekrit"
///   join_expiry 240
///   join_max_children 256                # cap on dynamic children
///   gossip_port 8654                     # or gossip_bind host:port; enables gossip
///   gossip_seed peer1:8654 peer2:8654    # repeatable
///   gossip_interval 2                    # seconds between rounds
///   gossip_fanout 3
///   t_fail 20                            # silence before SUSPECT (s)
///   t_cleanup 20                         # SUSPECT->DEAD grace (s)
///   gossip_aggregate on                  # adopt children naming us as parent
///   gossip_parent "core"                 # advertise our primary aggregator
///   standby_for "core"                   # repeatable; promote when DEAD
///   gossip_delta on                      # digest-delta sessions (off = text digests)
///   gossip_piggyback on                  # ride digests on federation poll streams
///   gossip_max_digest 4194304            # per-exchange digest payload cap (bytes)
///   gossip_resync_backoff 8              # text-fallback rounds after a binary failure
///   federation off                       # disable the delta poll client
///   federation_port 8655                 # or federation_bind host:port; delta serving
///   federation_heartbeat 30              # idle-session ping cadence (s; 0 = never)
///   federation_max_frame 4194304         # frame size cap (bytes)
///   federation_resync_backoff 60         # seconds on XML path after a delta failure
///   alarm "high-load" load_one > 8 hold 30 clear 4
///   alarm "dead" __host_down__ >= 1 hosts "web-.*" clusters "prod-.*"
Result<GmetadConfig> parse_config(std::string_view text);

/// Load + parse a config file.
Result<GmetadConfig> load_config_file(const std::string& path);

}  // namespace ganglia::gmetad
