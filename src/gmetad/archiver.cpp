#include "gmetad/archiver.hpp"

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "rrd/rrd_file.hpp"

namespace ganglia::gmetad {

namespace {

constexpr char kHostKeySep = '/';
constexpr std::string_view kSummaryInfix = "/__summary__/";

void build_host_key(std::string& buf, std::string_view source,
                    std::string_view cluster, std::string_view host,
                    std::string_view metric) {
  buf.clear();
  buf.reserve(source.size() + cluster.size() + host.size() + metric.size() + 3);
  buf += source;
  buf += kHostKeySep;
  buf += cluster;
  buf += kHostKeySep;
  buf += host;
  buf += kHostKeySep;
  buf += metric;
}

void build_summary_key(std::string& buf, std::string_view scope,
                       std::string_view metric) {
  buf.clear();
  buf.reserve(scope.size() + kSummaryInfix.size() + metric.size());
  buf += scope;
  buf += kSummaryInfix;
  buf += metric;
}

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Filesystem-safe file name for an archive key ('/' and other bytes that
/// matter to filesystems are percent-encoded).
bool safe_key_byte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
}

std::string encode_key(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (safe_key_byte(c)) {
      out += c;
    } else {
      out += strprintf("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

/// True when a manifest file name could have been produced by encode_key:
/// only safe bytes or '%' escapes, with the image suffix.  Anything else —
/// in particular path separators ("../../x.grrd") — is hostile and must
/// never be joined onto persist_dir.
bool safe_manifest_file(std::string_view file) {
  if (!ends_with(file, ".grrd") || file.size() == 5) return false;
  for (char c : file) {
    if (!safe_key_byte(c) && c != '%') return false;
  }
  return true;
}

}  // namespace

const Archiver::Shard& Archiver::shard_for(std::string_view key) const {
  return shards_[KeyHash{}(key) % kShards];
}

Archiver::Archive* Archiver::open_locked(Shard& shard, std::string_view key,
                                         std::size_t hash,
                                         std::size_t ds_count,
                                         std::int64_t now) {
  const auto it = shard.databases.find(KeyRef{key, hash});
  if (it != shard.databases.end()) return &it->second;

  rrd::RrdDef def = rrd::RrdDef::ganglia_default("sum", options_.heartbeat_s);
  def.step_s = options_.step_s;
  if (ds_count == 2) {
    rrd::DsDef num = def.ds.front();
    num.name = "num";
    def.ds.push_back(std::move(num));
  }
  auto db = rrd::RoundRobinDb::create(std::move(def), now - 1);
  if (!db.ok()) return nullptr;  // invalid options; callers treat as no-op
  const auto [pos, inserted] =
      shard.databases.emplace(std::string(key), Archive{std::move(*db)});
  (void)inserted;
  key_set_version_.fetch_add(1, std::memory_order_release);
  return &pos->second;
}

Archiver::SourceCache& Archiver::source_cache(const std::string& source) {
  std::lock_guard lock(caches_mutex_);
  auto& slot = caches_[source];
  if (!slot) slot = std::make_unique<SourceCache>();
  return *slot;
}

void Archiver::record_host_metric(const std::string& source,
                                  const std::string& cluster,
                                  const Host& host, const Metric& metric,
                                  std::int64_t now) {
  if (!metric.is_numeric()) return;
  std::string key;
  build_host_key(key, source, cluster, host.name, metric.name);
  const std::size_t hash = KeyHash{}(std::string_view(key));
  Shard& shard = shards_[hash % kShards];
  std::lock_guard lock(shard.mutex);
  Archive* archive = open_locked(shard, key, hash, 1, now);
  if (archive == nullptr) return;
  if (archive->db.update(now, metric.numeric).ok()) {
    archive->dirty = true;
    updates_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Archiver::record_cluster(const std::string& source,
                              const Cluster& cluster, std::int64_t now) {
  SourceCache& cache = source_cache(source);

  // Drain the shard buckets: one mutex acquisition per shard with work.
  // Handles from a stale generation (an entry was replaced/erased, e.g. by
  // load_from_disk) re-resolve through the key map under the same lock.
  std::uint64_t done = 0;
  const auto drain = [&] {
    for (std::size_t i = 0; i < kShards; ++i) {
      std::vector<PendingUpdate>& bucket = cache.pending[i];
      if (bucket.empty()) continue;
      Shard& shard = shards_[i];
      std::lock_guard lock(shard.mutex);
      const std::uint64_t gen =
          shard.generation.load(std::memory_order_relaxed);
      for (const PendingUpdate& p : bucket) {
        CachedHandle& handle = *p.slot;
        Archive* archive = (handle.archive != nullptr && handle.shard == i &&
                            handle.generation == gen)
                               ? handle.archive
                               : nullptr;
        if (archive == nullptr) {
          build_host_key(cache.key_buf, source, cluster.name, p.host->name,
                         p.metric->name);
          const std::size_t hash = KeyHash{}(std::string_view(cache.key_buf));
          archive = open_locked(shard, cache.key_buf, hash, 1, now);
          if (archive == nullptr) continue;
          handle = {archive, static_cast<std::uint32_t>(i), gen};
        }
        if (archive->db.update(now, p.value).ok()) {
          archive->dirty = true;
          ++done;
        }
      }
      bucket.clear();  // keeps capacity for the next poll
    }
  };

  // Phase 1 — resolve, lock-free: probe the per-source handle cache and
  // bucket every numeric metric by shard.  Only cache misses pay a key
  // build + hash here (to learn the shard); hits carry it in the handle.
  // Buckets are drained every kDrainHosts hosts so a big cluster's slots
  // and pending entries are applied while still cache-hot — the extra
  // (uncontended) lock rounds are noise next to the avoided misses.
  constexpr std::size_t kDrainHosts = 64;
  std::size_t bucketed_hosts = 0;
  for (const auto& [host_name, host] : cluster.hosts) {
    (void)host_name;
    if (!host.is_up()) continue;  // silent hosts leave unknown gaps
    // NUL-separated composite (NUL cannot appear in XML-derived names, so
    // distinct cluster/host pairs can never collide).
    cache.key_buf.assign(cluster.name);
    cache.key_buf += '\0';
    cache.key_buf += host.name;
    const std::size_t host_hash = KeyHash{}(std::string_view(cache.key_buf));
    auto host_it = cache.hosts.find(KeyRef{cache.key_buf, host_hash});
    if (host_it == cache.hosts.end()) {
      host_it = cache.hosts.emplace(cache.key_buf, HostSlots{}).first;
    }
    HostSlots& slots = host_it->second;
    // Size up front: PendingUpdate keeps pointers into this vector, so it
    // must not reallocate while this host's updates are being bucketed.
    if (slots.slots.size() < host.metrics.size()) {
      slots.slots.resize(host.metrics.size());
    }
    for (std::size_t j = 0; j < host.metrics.size(); ++j) {
      const Metric& metric = host.metrics[j];
      if (!metric.is_numeric()) continue;
      auto& [slot_name, handle] = slots.slots[j];
      if (slot_name != metric.name) {
        // Metric order changed since the last poll: adopt the handle from
        // wherever this metric lived before, or start cold.
        CachedHandle moved;
        for (const auto& other : slots.slots) {
          if (other.first == metric.name) {
            moved = other.second;
            break;
          }
        }
        slot_name = metric.name;
        handle = moved;
      }
      std::size_t shard_idx;
      if (handle.archive != nullptr) {
        shard_idx = handle.shard;  // generation re-checked under the lock
      } else {
        build_host_key(cache.key_buf, source, cluster.name, host.name,
                       metric.name);
        shard_idx = KeyHash{}(std::string_view(cache.key_buf)) % kShards;
      }
      cache.pending[shard_idx].push_back(
          {&host, &metric, &handle, metric.numeric});
    }
    if (++bucketed_hosts % kDrainHosts == 0) drain();
  }

  // Phase 2 — apply whatever the chunked drains left over.
  drain();
  if (done != 0) updates_.fetch_add(done, std::memory_order_relaxed);
}

void Archiver::record_summary(const std::string& scope,
                              const SummaryInfo& summary, std::int64_t now) {
  struct Item {
    std::string key;
    std::size_t hash;
    const MetricSummary* ms;
  };
  std::array<std::vector<Item>, kShards> buckets;
  for (const auto& [metric_name, ms] : summary.metrics) {
    std::string key;
    build_summary_key(key, scope, metric_name);
    const std::size_t hash = KeyHash{}(std::string_view(key));
    buckets[hash % kShards].push_back({std::move(key), hash, &ms});
  }
  std::uint64_t done = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    if (buckets[i].empty()) continue;
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mutex);
    for (const Item& item : buckets[i]) {
      Archive* archive = open_locked(shard, item.key, item.hash, 2, now);
      if (archive == nullptr) continue;
      const double values[2] = {item.ms->sum,
                                static_cast<double>(item.ms->num)};
      if (archive->db.update(now, std::span<const double>(values, 2)).ok()) {
        archive->dirty = true;
        ++done;
      }
    }
  }
  if (done != 0) updates_.fetch_add(done, std::memory_order_relaxed);
}

Result<rrd::Series> Archiver::fetch_host_metric(
    const std::string& source, const std::string& cluster,
    const std::string& host, const std::string& metric, std::int64_t start,
    std::int64_t end) const {
  std::string key;
  build_host_key(key, source, cluster, host, metric);
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.databases.find(std::string_view(key));
  if (it == shard.databases.end()) {
    return Err(Errc::not_found, "no archive for " + host + "/" + metric);
  }
  return it->second.db.fetch(rrd::ConsolidationFn::average, start, end);
}

Result<rrd::WindowAgg> Archiver::reduce_host_metric(
    const std::string& source, const std::string& cluster,
    const std::string& host, const std::string& metric, std::int64_t start,
    std::int64_t end) const {
  std::string key;
  build_host_key(key, source, cluster, host, metric);
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.databases.find(std::string_view(key));
  if (it == shard.databases.end()) {
    return Err(Errc::not_found, "no archive for " + host + "/" + metric);
  }
  // The reduction runs under the shard mutex (like fetch), but touches only
  // the window's rows — a historical query never deserialises files or
  // copies the ring.
  return it->second.db.reduce(rrd::ConsolidationFn::average, start, end);
}

Result<rrd::Series> Archiver::fetch_summary_metric(const std::string& scope,
                                                   const std::string& metric,
                                                   std::int64_t start,
                                                   std::int64_t end,
                                                   std::size_t ds_index) const {
  std::string key;
  build_summary_key(key, scope, metric);
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.databases.find(std::string_view(key));
  if (it == shard.databases.end()) {
    return Err(Errc::not_found, "no summary archive for " + scope + "/" + metric);
  }
  return it->second.db.fetch(rrd::ConsolidationFn::average, start, end,
                              ds_index);
}

// ------------------------------------------------------------- persistence

Status Archiver::flush_to_disk() {
  auto flushed = flush_impl(/*everything=*/true);
  if (!flushed.ok()) return flushed.error();
  return {};
}

Result<Archiver::FlushStats> Archiver::flush_dirty() {
  return flush_impl(/*everything=*/false);
}

Result<Archiver::FlushStats> Archiver::flush_impl(bool everything) {
  if (options_.persist_dir.empty()) {
    return Err(Errc::invalid_argument, "no persist_dir configured");
  }
  std::lock_guard flush_lock(flush_mutex_);
  std::error_code ec;
  std::filesystem::create_directories(options_.persist_dir, ec);
  if (ec) {
    return Err(Errc::io_error,
               "cannot create " + options_.persist_dir + ": " + ec.message());
  }
  const std::uint64_t keys_now =
      key_set_version_.load(std::memory_order_acquire);

  FlushStats stats;
  struct Image {
    const std::string* key;  ///< node-stable map key
    std::string file;
    std::string bytes;
  };
  // One shard at a time: serialise that shard's (dirty) archives under its
  // mutex, then do every file write with no shard lock held.  Updates that
  // land between the serialise and the write simply re-dirty the archive
  // for the next pass.
  for (Shard& shard : shards_) {
    std::vector<Image> images;
    {
      std::lock_guard lock(shard.mutex);
      for (auto& [key, archive] : shard.databases) {
        if (!everything && !archive.dirty) continue;
        images.push_back({&key, encode_key(key) + ".grrd",
                          rrd::RrdCodec::serialize(archive.db)});
        archive.dirty = false;
      }
    }
    for (std::size_t w = 0; w < images.size(); ++w) {
      if (Status s = rrd::write_file_atomic(
              options_.persist_dir + "/" + images[w].file, images[w].bytes);
          !s.ok()) {
        // Re-mark what this pass failed to persist so the next one retries.
        std::lock_guard lock(shard.mutex);
        for (std::size_t r = w; r < images.size(); ++r) {
          const auto it = shard.databases.find(*images[r].key);
          if (it != shard.databases.end()) it->second.dirty = true;
        }
        return s.error();
      }
      ++stats.archives_written;
    }
  }

  if (everything || manifest_version_ != keys_now) {
    // Manifest: one "encoded-filename<TAB>raw-key" line per archive, in
    // sorted key order so it is deterministic regardless of sharding.
    std::map<std::string, std::string> ordered;
    for (Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      for (const auto& [key, archive] : shard.databases) {
        (void)archive;
        ordered.emplace(key, encode_key(key) + ".grrd");
      }
    }
    std::string manifest;
    for (const auto& [key, file] : ordered) {
      manifest += file + "\t" + key + "\n";
    }
    if (Status s = rrd::write_file_atomic(
            options_.persist_dir + "/manifest.tsv", manifest);
        !s.ok()) {
      return s.error();
    }
    // Conservative: keys added while collecting bump key_set_version_ past
    // keys_now, so the next flush rewrites again.
    manifest_version_ = keys_now;
    stats.manifest_rewritten = true;
  }

  last_flush_steady_ms_.store(steady_now_ms(), std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

Status Archiver::load_from_disk() {
  if (options_.persist_dir.empty()) {
    return Err(Errc::invalid_argument, "no persist_dir configured");
  }
  std::lock_guard flush_lock(flush_mutex_);

  // Sweep kill -9 leftovers: a "<name>.tmp" never reached its rename and
  // is garbage by definition (the manifest only names final images).
  std::error_code ec;
  for (std::filesystem::directory_iterator it(options_.persist_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".tmp") {
      std::error_code remove_ec;
      std::filesystem::remove(it->path(), remove_ec);
    }
  }

  std::ifstream manifest(options_.persist_dir + "/manifest.tsv");
  if (!manifest) return {};  // cold start
  std::size_t restored = 0;
  std::size_t skipped = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    const std::string file = line.substr(0, tab);
    const std::string key = line.substr(tab + 1);
    if (!safe_manifest_file(file)) {
      GLOG(warn, "archiver") << "rejecting unsafe manifest entry '" << file
                             << "'";
      ++skipped;
      continue;
    }
    auto db = rrd::RrdCodec::load_file(options_.persist_dir + "/" + file);
    if (!db.ok()) {
      // Torn write or deleted image: restore everything else.
      GLOG(warn, "archiver") << "skipping archive '" << key
                             << "': " << db.error().to_string();
      ++skipped;
      continue;
    }
    const std::size_t hash = KeyHash{}(std::string_view(key));
    Shard& shard = shards_[hash % kShards];
    std::lock_guard lock(shard.mutex);
    const auto it = shard.databases.find(KeyRef{key, hash});
    if (it != shard.databases.end()) {
      it->second.db = std::move(*db);
      it->second.dirty = false;
      // Replaced an entry: stale cached handles must re-resolve.
      shard.generation.fetch_add(1, std::memory_order_relaxed);
    } else {
      shard.databases.emplace(key, Archive{std::move(*db)});
      key_set_version_.fetch_add(1, std::memory_order_release);
    }
    ++restored;
  }
  if (skipped != 0) {
    GLOG(warn, "archiver") << "restore: " << restored << " archives loaded, "
                           << skipped << " skipped";
  }
  return {};
}

Status Archiver::start_flusher() {
  if (options_.persist_dir.empty() || options_.flush_interval_s <= 0) {
    return {};
  }
  if (flusher_.joinable()) return {};  // already running
  flusher_ = std::jthread([this](std::stop_token token) {
    std::mutex wait_mutex;
    std::condition_variable_any cv;
    std::unique_lock lock(wait_mutex);
    while (!token.stop_requested()) {
      cv.wait_for(lock, token,
                  std::chrono::seconds(options_.flush_interval_s),
                  [] { return false; });
      if (token.stop_requested()) break;
      if (auto flushed = flush_dirty(); !flushed.ok()) {
        GLOG(warn, "archiver") << "write-behind flush failed: "
                               << flushed.error().to_string();
      }
    }
  });
  return {};
}

void Archiver::stop_flusher() {
  if (!flusher_.joinable()) return;
  flusher_.request_stop();
  flusher_.join();
  flusher_ = std::jthread();
}

std::size_t Archiver::database_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    n += shard.databases.size();
  }
  return n;
}

std::size_t Archiver::storage_bytes() const {
  std::size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, archive] : shard.databases) {
      (void)key;
      bytes += archive.db.storage_bytes();
    }
  }
  return bytes;
}

std::size_t Archiver::dirty_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, archive] : shard.databases) {
      (void)key;
      if (archive.dirty) ++n;
    }
  }
  return n;
}

double Archiver::seconds_since_last_flush() const {
  const std::int64_t at = last_flush_steady_ms_.load(std::memory_order_relaxed);
  if (at < 0) return -1.0;
  return static_cast<double>(steady_now_ms() - at) / 1000.0;
}

}  // namespace ganglia::gmetad
