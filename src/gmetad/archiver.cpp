#include "gmetad/archiver.hpp"

#include <filesystem>
#include <fstream>
#include <functional>

#include "common/strings.hpp"
#include "rrd/rrd_file.hpp"

namespace ganglia::gmetad {

namespace {
std::string host_key(const std::string& source, const std::string& cluster,
                     const std::string& host, const std::string& metric) {
  return source + "/" + cluster + "/" + host + "/" + metric;
}
std::string summary_key(const std::string& scope, const std::string& metric) {
  return scope + "/__summary__/" + metric;
}
}  // namespace

Archiver::Shard& Archiver::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

const Archiver::Shard& Archiver::shard_for(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

rrd::RoundRobinDb* Archiver::open(Shard& shard, const std::string& key,
                                  std::size_t ds_count, std::int64_t now) {
  const auto it = shard.databases.find(key);
  if (it != shard.databases.end()) return it->second.get();

  rrd::RrdDef def = rrd::RrdDef::ganglia_default("sum", options_.heartbeat_s);
  def.step_s = options_.step_s;
  if (ds_count == 2) {
    rrd::DsDef num = def.ds.front();
    num.name = "num";
    def.ds.push_back(std::move(num));
  }
  auto db = rrd::RoundRobinDb::create(std::move(def), now - 1);
  if (!db.ok()) return nullptr;  // invalid options; callers treat as no-op
  auto owned = std::make_unique<rrd::RoundRobinDb>(std::move(*db));
  rrd::RoundRobinDb* raw = owned.get();
  shard.databases.emplace(key, std::move(owned));
  return raw;
}

void Archiver::record_host_metric(const std::string& source,
                                  const std::string& cluster,
                                  const Host& host, const Metric& metric,
                                  std::int64_t now) {
  if (!metric.is_numeric()) return;
  const std::string key = host_key(source, cluster, host.name, metric.name);
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  rrd::RoundRobinDb* db = open(shard, key, 1, now);
  if (db == nullptr) return;
  if (db->update(now, metric.numeric).ok()) {
    updates_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Archiver::record_cluster(const std::string& source,
                              const Cluster& cluster, std::int64_t now) {
  for (const auto& [host_name, host] : cluster.hosts) {
    (void)host_name;
    if (!host.is_up()) continue;  // silent hosts leave unknown gaps
    for (const Metric& metric : host.metrics) {
      record_host_metric(source, cluster.name, host, metric, now);
    }
  }
}

void Archiver::record_summary(const std::string& scope,
                              const SummaryInfo& summary, std::int64_t now) {
  for (const auto& [metric_name, ms] : summary.metrics) {
    const std::string key = summary_key(scope, metric_name);
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    rrd::RoundRobinDb* db = open(shard, key, 2, now);
    if (db == nullptr) continue;
    const double values[2] = {ms.sum, static_cast<double>(ms.num)};
    if (db->update(now, std::span<const double>(values, 2)).ok()) {
      updates_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Result<rrd::Series> Archiver::fetch_host_metric(
    const std::string& source, const std::string& cluster,
    const std::string& host, const std::string& metric, std::int64_t start,
    std::int64_t end) const {
  const std::string key = host_key(source, cluster, host, metric);
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.databases.find(key);
  if (it == shard.databases.end()) {
    return Err(Errc::not_found, "no archive for " + host + "/" + metric);
  }
  return it->second->fetch(rrd::ConsolidationFn::average, start, end);
}

Result<rrd::Series> Archiver::fetch_summary_metric(const std::string& scope,
                                                   const std::string& metric,
                                                   std::int64_t start,
                                                   std::int64_t end,
                                                   std::size_t ds_index) const {
  const std::string key = summary_key(scope, metric);
  const Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.databases.find(key);
  if (it == shard.databases.end()) {
    return Err(Errc::not_found, "no summary archive for " + scope + "/" + metric);
  }
  return it->second->fetch(rrd::ConsolidationFn::average, start, end, ds_index);
}

namespace {
/// Filesystem-safe file name for an archive key ('/' and other bytes that
/// matter to filesystems are percent-encoded).
std::string encode_key(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    if (safe) {
      out += c;
    } else {
      out += strprintf("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}
}  // namespace

Status Archiver::flush_to_disk() const {
  if (options_.persist_dir.empty()) {
    return Err(Errc::invalid_argument, "no persist_dir configured");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.persist_dir, ec);
  if (ec) {
    return Err(Errc::io_error,
               "cannot create " + options_.persist_dir + ": " + ec.message());
  }
  // Manifest: one "encoded-filename<TAB>raw-key" line per archive.  Keys
  // are collected across shards and written in sorted order so the
  // manifest is deterministic regardless of sharding.
  std::map<std::string, const rrd::RoundRobinDb*> ordered;
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (std::size_t i = 0; i < kShards; ++i) {
    locks[i] = std::unique_lock(shards_[i].mutex);
    for (const auto& [key, db] : shards_[i].databases) {
      ordered.emplace(key, db.get());
    }
  }
  std::string manifest;
  for (const auto& [key, db] : ordered) {
    const std::string file = encode_key(key) + ".grrd";
    if (Status s = rrd::RrdCodec::save_file(
            *db, options_.persist_dir + "/" + file);
        !s.ok()) {
      return s;
    }
    manifest += file + "\t" + key + "\n";
  }
  std::ofstream out(options_.persist_dir + "/manifest.tsv", std::ios::trunc);
  if (!out) return Err(Errc::io_error, "cannot write manifest");
  out << manifest;
  return {};
}

Status Archiver::load_from_disk() {
  if (options_.persist_dir.empty()) {
    return Err(Errc::invalid_argument, "no persist_dir configured");
  }
  std::ifstream manifest(options_.persist_dir + "/manifest.tsv");
  if (!manifest) return {};  // cold start
  std::string line;
  while (std::getline(manifest, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    const std::string file = line.substr(0, tab);
    const std::string key = line.substr(tab + 1);
    auto db = rrd::RrdCodec::load_file(options_.persist_dir + "/" + file);
    if (!db.ok()) {
      return Err(db.error().code,
                 "archive '" + key + "': " + db.error().message);
    }
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    shard.databases[key] = std::make_unique<rrd::RoundRobinDb>(std::move(*db));
  }
  return {};
}

std::size_t Archiver::database_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    n += shard.databases.size();
  }
  return n;
}

std::size_t Archiver::storage_bytes() const {
  std::size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, db] : shard.databases) {
      (void)key;
      bytes += db->storage_bytes();
    }
  }
  return bytes;
}

}  // namespace ganglia::gmetad
