// The gmetad query engine.
//
// "Instead of returning the entire tree rooted at a node, monitors accept a
// small path-like query that specifies a single local subtree to report"
// (paper §2.3, fig 4).  Queries resolve through the store's three hash
// levels — data sources, clusters/grids, hosts — in O(1) per level; dumping
// the matched subtree then costs O(m) for summaries, O(H) for full-detail
// clusters, exactly the cost model of §2.3.2.
//
// Grammar:
//
//   query       := path [ "?" option ] | "/"
//   path        := "/" segment { "/" segment } [ "/" ]
//   segment     := literal | "~" regex          (regex: ECMAScript)
//   option      := "filter=summary"
//
// Examples:
//   /                          whole tree (the dump port's output)
//   /?filter=summary           meta view: one summary over all sources
//   /meteor                    cluster "meteor" at full resolution
//   /meteor?filter=summary     cluster-summary filter (§2.3.2)
//   /meteor/compute-0-0        one host
//   /meteor/compute-0-0/load_one   one metric
//   /attic/nashi/host-3        descend through a child grid
//   /~compute-.*/              regex (planned "next version" extension §4)
//
// Descending below a summary-form grid is impossible by design — the data
// lives at the child; the error carries the child's authority URL so the
// caller can follow the pointer-based distributed tree (§2.2).
#pragma once

#include <regex>
#include <string>
#include <vector>

#include "gmetad/config.hpp"
#include "gmetad/store.hpp"

namespace ganglia::gmetad {

struct QuerySegment {
  std::string text;
  bool is_regex = false;
  std::regex pattern;  // valid when is_regex

  bool matches(std::string_view name) const;
};

struct ParsedQuery {
  std::vector<QuerySegment> segments;
  bool summary = false;
};

/// Parse a query line.  Fails on empty input, bad options, bad regexes.
Result<ParsedQuery> parse_query(std::string_view line);

/// Identity of the answering gmetad, stamped on every response.
struct QueryContext {
  std::string grid_name;
  std::string authority;
  std::string version = "2.5.4";
  Mode mode = Mode::n_level;
  std::int64_t now = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(const Store& store) : store_(store) {}

  /// Execute a query line and render the response document.
  Result<std::string> execute(std::string_view line,
                              const QueryContext& ctx) const;

  /// The dump-port document: the entire tree per the node's mode
  /// (equivalent to the query "/").
  std::string dump(const QueryContext& ctx) const;

 private:
  std::string render(const ParsedQuery& query, const QueryContext& ctx,
                     std::size_t& matches, std::string& redirect) const;

  const Store& store_;
};

}  // namespace ganglia::gmetad
