// The gmetad query engine.
//
// "Instead of returning the entire tree rooted at a node, monitors accept a
// small path-like query that specifies a single local subtree to report"
// (paper §2.3, fig 4).  Queries resolve through the store's three hash
// levels — data sources, clusters/grids, hosts — in O(1) per level; dumping
// the matched subtree then costs O(m) for summaries, O(H) for full-detail
// clusters, exactly the cost model of §2.3.2.
//
// Grammar:
//
//   query       := path [ "?" option ] | "/"
//   path        := "/" segment { "/" segment } [ "/" ]
//   segment     := literal | "~" regex          (regex: ECMAScript)
//   option      := "filter=summary"
//
// Examples:
//   /                          whole tree (the dump port's output)
//   /?filter=summary           meta view: one summary over all sources
//   /meteor                    cluster "meteor" at full resolution
//   /meteor?filter=summary     cluster-summary filter (§2.3.2)
//   /meteor/compute-0-0        one host
//   /meteor/compute-0-0/load_one   one metric
//   /attic/nashi/host-3        descend through a child grid
//   /~compute-.*/              regex (planned "next version" extension §4)
//
// Descending below a summary-form grid is impossible by design — the data
// lives at the child; the error carries the child's authority URL so the
// caller can follow the pointer-based distributed tree (§2.2).
//
// The query line arrives on the open service port, so parsing is hardened
// against adversarial input with hard caps (below).  The regex cap is the
// one that bounds CPU: std::regex construction compiles an NFA whose size
// grows with the pattern, and ECMAScript matching can backtrack
// exponentially in pattern length — capping the pattern at kMaxRegexBytes
// (and the subject strings at tree-name length) keeps both construction
// and matching cost bounded per query.
//
// Rendering goes through the unified render pipeline (gmetad/render): one
// traversal emits backend events, so the same resolution logic serves XML,
// JSON, and the presenter's HTML backends.  Whole-tree responses splice
// publish-time snapshot fragments instead of re-walking every host.
#pragma once

#include <cstddef>
#include <regex>
#include <string>
#include <vector>

#include "gmetad/config.hpp"
#include "gmetad/render/backend.hpp"
#include "gmetad/render/deps.hpp"
#include "gmetad/store.hpp"

namespace ganglia::gmetad {

/// Hard caps on query lines (adversarial input on the service port).
inline constexpr std::size_t kMaxQueryBytes = 4096;
inline constexpr std::size_t kMaxQuerySegments = 32;
inline constexpr std::size_t kMaxRegexBytes = 128;

struct QuerySegment {
  std::string text;
  bool is_regex = false;
  std::regex pattern;  // valid when is_regex

  bool matches(std::string_view name) const;
};

struct ParsedQuery {
  std::vector<QuerySegment> segments;
  bool summary = false;
};

/// Parse a query line.  Fails on empty input, bad options, bad regexes,
/// and lines exceeding the hard caps above.
Result<ParsedQuery> parse_query(std::string_view line);

/// Identity of the answering gmetad, stamped on every response.
struct QueryContext {
  std::string grid_name;
  std::string authority;
  std::string version = "2.5.4";
  Mode mode = Mode::n_level;
  std::int64_t now = 0;
};

/// A rendered response together with everything a response cache needs:
/// the store versions the body was computed from.
struct RenderedQuery {
  std::string body;
  render::Deps deps;
  std::size_t matches = 0;
  std::string redirect;  ///< authority URL hit below a summary grid
};

class QueryEngine {
 public:
  explicit QueryEngine(const Store& store) : store_(store) {}

  /// Execute a query line and render the response document as XML (the
  /// interactive port's format).
  Result<std::string> execute(std::string_view line,
                              const QueryContext& ctx) const;

  /// Execute a query line and render in the requested format, reporting
  /// the dependency set for cache invalidation.  not_found failures carry
  /// the redirect authority in the error message, as execute() does.
  Result<RenderedQuery> execute_rendered(std::string_view line,
                                         const QueryContext& ctx,
                                         render::Format format) const;

  /// The dump-port document: the entire tree per the node's mode
  /// (equivalent to the query "/").
  std::string dump(const QueryContext& ctx) const;

  /// Drive the document walk for an already-parsed query through any
  /// backend — the route by which the presenter's HTML backends share the
  /// traversal.  Returns the dependency set; match count and redirect are
  /// reported through the out-params.
  render::Deps render_with(const ParsedQuery& query, const QueryContext& ctx,
                           render::Backend& backend, std::size_t& matches,
                           std::string& redirect) const;

  /// Bench hook: disable publish-time fragment splicing to measure the
  /// walk-render path.  On by default.
  void set_use_fragments(bool on) noexcept { use_fragments_ = on; }
  bool use_fragments() const noexcept { return use_fragments_; }

 private:
  render::Deps render_document(const ParsedQuery& query,
                               const QueryContext& ctx,
                               render::Backend& backend,
                               const render::Format* splice_format,
                               std::size_t& matches,
                               std::string& redirect) const;

  const Store& store_;
  bool use_fragments_ = true;
};

}  // namespace ganglia::gmetad
