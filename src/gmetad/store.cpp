#include "gmetad/store.hpp"

#include <mutex>

namespace ganglia::gmetad {

SourceSnapshot::SourceSnapshot(std::string name, Report report,
                               std::int64_t fetched_at, bool eager_summary)
    : name_(std::move(name)), report_(std::move(report)),
      fetched_at_(fetched_at) {
  is_grid_ = !report_.grids.empty();
  if (is_grid_ && !report_.grids.empty()) {
    authority_ = report_.grids.front().authority;
  }
  for (const Cluster& c : report_.clusters) {
    cluster_index_.emplace(c.name, &c);
    host_count_ += c.hosts.size();
  }
  for (const Grid& g : report_.grids) index_grid(g);
  if (eager_summary) summary();
}

void SourceSnapshot::compute_summary() const {
  // One pass computes and caches every cluster reduction (including those
  // inside full-detail child grids) and folds them into the source total.
  const auto add_cluster = [this](const Cluster& c) -> const SummaryInfo& {
    return cluster_summaries_.emplace(&c, c.summarize()).first->second;
  };
  for (const Cluster& c : report_.clusters) summary_.merge(add_cluster(c));
  const auto walk = [this, &add_cluster](const auto& self,
                                         const Grid& g) -> SummaryInfo {
    if (g.summary) return *g.summary;
    SummaryInfo total;
    for (const Cluster& c : g.clusters) total.merge(add_cluster(c));
    for (const Grid& child : g.grids) total.merge(self(self, child));
    return total;
  };
  for (const Grid& g : report_.grids) summary_.merge(walk(walk, g));
}

const SummaryInfo& SourceSnapshot::summary() const {
  std::call_once(summary_once_, [this] { compute_summary(); });
  return summary_;
}

const SummaryInfo& SourceSnapshot::cluster_summary(const Cluster& cluster) const {
  summary();  // ensure the cache is built (all clusters of this snapshot)
  const auto it = cluster_summaries_.find(&cluster);
  if (it != cluster_summaries_.end()) return it->second;
  // A cluster that is not part of this snapshot (defensive; concurrent
  // callers must not mutate the cache, so compute under a lock).
  std::lock_guard lock(fallback_mutex_);
  return fallback_summaries_.emplace(&cluster, cluster.summarize())
      .first->second;
}

void SourceSnapshot::index_grid(const Grid& grid) {
  grid_index_.emplace(grid.name, &grid);
  for (const Cluster& c : grid.clusters) {
    cluster_index_.emplace(c.name, &c);
    host_count_ += c.hosts.size();
  }
  for (const Grid& g : grid.grids) index_grid(g);
}

std::shared_ptr<const SourceSnapshot> SourceSnapshot::unreachable_from(
    const std::shared_ptr<const SourceSnapshot>& previous, std::string name,
    std::int64_t at) {
  std::shared_ptr<SourceSnapshot> snapshot;
  if (previous) {
    // Indexes must be rebuilt against this snapshot's own report copy.
    Report copy = previous->report_;
    snapshot = std::shared_ptr<SourceSnapshot>(
        new SourceSnapshot(std::move(name), std::move(copy), at));
    snapshot->fetched_at_ = previous->fetched_at_;  // data is still old
  } else {
    snapshot = std::shared_ptr<SourceSnapshot>(new SourceSnapshot());
    snapshot->name_ = std::move(name);
  }
  snapshot->reachable_ = false;
  return snapshot;
}

const Cluster* SourceSnapshot::find_cluster(std::string_view cluster_name) const {
  const auto it = cluster_index_.find(cluster_name);
  return it == cluster_index_.end() ? nullptr : it->second;
}

const Grid* SourceSnapshot::find_grid(std::string_view grid_name) const {
  const auto it = grid_index_.find(grid_name);
  return it == grid_index_.end() ? nullptr : it->second;
}

void Store::publish(std::shared_ptr<const SourceSnapshot> snapshot) {
  std::unique_lock lock(mutex_);
  snapshots_[snapshot->name()] = std::move(snapshot);
  epoch_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const SourceSnapshot> Store::get(std::string_view source) const {
  std::shared_lock lock(mutex_);
  const auto it = snapshots_.find(source);
  return it == snapshots_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const SourceSnapshot>> Store::all() const {
  std::shared_lock lock(mutex_);
  std::vector<std::shared_ptr<const SourceSnapshot>> out;
  out.reserve(snapshots_.size());
  for (const auto& [name, snapshot] : snapshots_) {
    (void)name;
    out.push_back(snapshot);
  }
  return out;
}

void Store::remove(std::string_view source) {
  std::unique_lock lock(mutex_);
  const auto it = snapshots_.find(source);
  if (it != snapshots_.end()) {
    snapshots_.erase(it);
    epoch_.fetch_add(1, std::memory_order_release);
  }
}

std::size_t Store::size() const {
  std::shared_lock lock(mutex_);
  return snapshots_.size();
}

}  // namespace ganglia::gmetad
