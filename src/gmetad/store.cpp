#include "gmetad/store.hpp"

#include <cassert>
#include <mutex>
#include <shared_mutex>

namespace ganglia::gmetad {

SourceSnapshot::SourceSnapshot(std::string name, Report report,
                               std::int64_t fetched_at, bool eager_summary)
    : name_(std::move(name)), report_(std::move(report)),
      fetched_at_(fetched_at) {
  is_grid_ = !report_.grids.empty();
  if (is_grid_ && !report_.grids.empty()) {
    authority_ = report_.grids.front().authority;
  }
  for (const Cluster& c : report_.clusters) {
    cluster_index_.emplace(c.name, &c);
    host_count_ += c.hosts.size();
  }
  for (const Grid& g : report_.grids) index_grid(g);
  if (eager_summary) summary();
}

void SourceSnapshot::compute_summary() const {
  // One pass computes and caches every cluster reduction (including those
  // inside full-detail child grids) and folds them into the source total.
  // Runs under call_once, so no reader observes the map mid-build; the
  // lock still guards against a concurrent foreign-cluster insert from a
  // caller whose call_once already completed.
  std::unique_lock lock(summaries_mutex_);
  const auto add_cluster = [this](const Cluster& c) -> const SummaryInfo& {
    return cluster_summaries_.emplace(&c, c.summarize()).first->second;
  };
  for (const Cluster& c : report_.clusters) summary_.merge(add_cluster(c));
  const auto walk = [this, &add_cluster](const auto& self,
                                         const Grid& g) -> SummaryInfo {
    if (g.summary) return *g.summary;
    SummaryInfo total;
    for (const Cluster& c : g.clusters) total.merge(add_cluster(c));
    for (const Grid& child : g.grids) total.merge(self(self, child));
    return total;
  };
  for (const Grid& g : report_.grids) summary_.merge(walk(walk, g));
}

const SummaryInfo& SourceSnapshot::summary() const {
  std::call_once(summary_once_, [this] { compute_summary(); });
  return summary_;
}

const SummaryInfo& SourceSnapshot::cluster_summary(const Cluster& cluster) const {
  summary();  // ensure the cache is built (all clusters of this snapshot)
  {
    std::shared_lock lock(summaries_mutex_);
    const auto it = cluster_summaries_.find(&cluster);
    if (it != cluster_summaries_.end()) return it->second;
  }
  // A cluster that is not part of this snapshot (defensive): compute once
  // under the writer lock and cache it alongside the rest.
  std::unique_lock lock(summaries_mutex_);
  return cluster_summaries_.try_emplace(&cluster, cluster.summarize())
      .first->second;
}

const std::string& SourceSnapshot::fragment(
    std::size_t slot, const std::function<std::string()>& build) const {
  assert(slot < kFragmentSlots);
  FragmentSlot& cell = fragments_[slot];
  std::call_once(cell.once, [&cell, &build] { cell.bytes = build(); });
  return cell.bytes;
}

void SourceSnapshot::index_grid(const Grid& grid) {
  grid_index_.emplace(grid.name, &grid);
  for (const Cluster& c : grid.clusters) {
    cluster_index_.emplace(c.name, &c);
    host_count_ += c.hosts.size();
  }
  for (const Grid& g : grid.grids) index_grid(g);
}

std::shared_ptr<const SourceSnapshot> SourceSnapshot::unreachable_from(
    const std::shared_ptr<const SourceSnapshot>& previous, std::string name,
    std::int64_t at) {
  std::shared_ptr<SourceSnapshot> snapshot;
  if (previous) {
    // Indexes must be rebuilt against this snapshot's own report copy.
    Report copy = previous->report_;
    snapshot = std::shared_ptr<SourceSnapshot>(
        new SourceSnapshot(std::move(name), std::move(copy), at));
    snapshot->fetched_at_ = previous->fetched_at_;  // data is still old
  } else {
    snapshot = std::shared_ptr<SourceSnapshot>(new SourceSnapshot());
    snapshot->name_ = std::move(name);
  }
  snapshot->reachable_ = false;
  return snapshot;
}

const Cluster* SourceSnapshot::find_cluster(std::string_view cluster_name) const {
  const auto it = cluster_index_.find(cluster_name);
  return it == cluster_index_.end() ? nullptr : it->second;
}

const Grid* SourceSnapshot::find_grid(std::string_view grid_name) const {
  const auto it = grid_index_.find(grid_name);
  return it == grid_index_.end() ? nullptr : it->second;
}

void Store::publish(std::shared_ptr<const SourceSnapshot> snapshot) {
  std::unique_lock lock(mutex_);
  // One counter for all sources: a version pins the exact snapshot, and
  // comparing recorded versions never needs per-source counters.
  const std::uint64_t version =
      version_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Take the key before the move: arguments are indeterminately sequenced,
  // so snapshot->name() inside the call could read a moved-from pointer.
  std::string name = snapshot->name();
  auto [it, inserted] = snapshots_.insert_or_assign(
      std::move(name), Versioned{std::move(snapshot), version});
  (void)it;
  if (inserted) {
    structure_version_.fetch_add(1, std::memory_order_release);
  }
}

std::shared_ptr<const SourceSnapshot> Store::get(std::string_view source) const {
  std::shared_lock lock(mutex_);
  const auto it = snapshots_.find(source);
  return it == snapshots_.end() ? nullptr : it->second.snapshot;
}

std::vector<std::shared_ptr<const SourceSnapshot>> Store::all() const {
  std::shared_lock lock(mutex_);
  std::vector<std::shared_ptr<const SourceSnapshot>> out;
  out.reserve(snapshots_.size());
  for (const auto& [name, entry] : snapshots_) {
    (void)name;
    out.push_back(entry.snapshot);
  }
  return out;
}

std::vector<Store::Versioned> Store::all_versioned(
    std::uint64_t* structure_version) const {
  std::shared_lock lock(mutex_);
  if (structure_version != nullptr) {
    *structure_version = structure_version_.load(std::memory_order_acquire);
  }
  std::vector<Versioned> out;
  out.reserve(snapshots_.size());
  for (const auto& [name, entry] : snapshots_) {
    (void)name;
    out.push_back(entry);
  }
  return out;
}

std::uint64_t Store::source_version(std::string_view source) const {
  std::shared_lock lock(mutex_);
  const auto it = snapshots_.find(source);
  return it == snapshots_.end() ? 0 : it->second.version;
}

void Store::remove(std::string_view source) {
  std::unique_lock lock(mutex_);
  const auto it = snapshots_.find(source);
  if (it != snapshots_.end()) {
    snapshots_.erase(it);
    structure_version_.fetch_add(1, std::memory_order_release);
  }
}

std::size_t Store::size() const {
  std::shared_lock lock(mutex_);
  return snapshots_.size();
}

}  // namespace ganglia::gmetad
