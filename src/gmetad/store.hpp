// The gmetad in-memory store.
//
// "By organizing the parsed monitoring data in a series of hash tables, we
// can support very low-latency queries.  Our approach approximates a DOM
// design where each XML tag name keys into a hash table ... A node must
// search at most three hash table levels to find the desired subtree: data
// sources, summaries and cluster nodes, and node metrics." (paper §2.3.2)
//
// Concurrency follows the paper's freshness-for-latency trade: the poller
// parses a source's new report *off to the side* into an immutable
// SourceSnapshot and then publishes it with one atomic shared_ptr swap.
// "Query results are based only on the latest fully-parsed data, making
// long parsing times relatively insignificant.  If a query arrives during
// parsing, the previous summary will be returned."  Readers never block on
// the parser and vice versa.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xml/ganglia.hpp"

namespace ganglia::gmetad {

/// Immutable parsed state of one data source.  Hash indexes are built once
/// at construction; afterwards the snapshot is safe for lock-free reads.
class SourceSnapshot {
 public:
  /// Build from a parsed report (`report` is consumed).  `is_grid` is
  /// inferred: a report carrying GRID elements came from a child gmetad.
  /// With eager_summary=false the reduction is computed on first use —
  /// the 1-level design (monitor-core 2.5.1) performed no summarisation
  /// during polling, and its poll path must not pay for one here.
  SourceSnapshot(std::string name, Report report, std::int64_t fetched_at,
                 bool eager_summary = true);

  // The hash indexes hold string_views into report_ (short names sit in
  // SSO buffers), so the object must never relocate its storage.
  SourceSnapshot(const SourceSnapshot&) = delete;
  SourceSnapshot& operator=(const SourceSnapshot&) = delete;
  SourceSnapshot(SourceSnapshot&&) = delete;
  SourceSnapshot& operator=(SourceSnapshot&&) = delete;

  /// An unreachable placeholder carrying the previous snapshot's data (so
  /// queries keep serving the last-known state, marked stale).
  static std::shared_ptr<const SourceSnapshot> unreachable_from(
      const std::shared_ptr<const SourceSnapshot>& previous, std::string name,
      std::int64_t at);

  const std::string& name() const noexcept { return name_; }
  bool is_grid() const noexcept { return is_grid_; }
  bool reachable() const noexcept { return reachable_; }
  std::int64_t fetched_at() const noexcept { return fetched_at_; }

  /// Full-detail clusters (gmond sources have exactly one; a 1-level child
  /// gmetad forwards many inside grids).
  const std::vector<Cluster>& clusters() const noexcept {
    return report_.clusters;
  }
  /// Child grids as received (full detail from 1-level children, summary
  /// form from N-level children).
  const std::vector<Grid>& grids() const noexcept { return report_.grids; }

  /// Additive summary over everything in this source (computed lazily when
  /// the snapshot was built without an eager summary; thread-safe).
  const SummaryInfo& summary() const;

  /// Precomputed summary of one cluster in this snapshot, so the
  /// cluster-summary query filter serves in O(m) instead of O(H) — the
  /// paper computes all reductions on the summarisation time scale, never
  /// at query time.  Clusters of this snapshot hit the reduction computed
  /// by summary(); a foreign cluster (defensive) is computed once and
  /// cached in the same map.
  const SummaryInfo& cluster_summary(const Cluster& cluster) const;

  /// Serialized subtree bytes, materialised once per slot (publish-time
  /// render fragments — see gmetad/render/fragments.hpp, which owns the
  /// slot layout).  `build` runs at most once per slot; concurrent callers
  /// block until the bytes exist.  Keeping the cache here, keyed by opaque
  /// slot index, lets the snapshot stay ignorant of render formats.
  static constexpr std::size_t kFragmentSlots = 6;
  const std::string& fragment(std::size_t slot,
                              const std::function<std::string()>& build) const;

  /// Authority URL of the child gmetad (empty for gmond sources).
  const std::string& authority() const noexcept { return authority_; }

  // -- hash lookups (level 2 of the paper's three) -------------------------
  /// Find a cluster anywhere in this source by name (O(1)).
  const Cluster* find_cluster(std::string_view cluster_name) const;
  /// Find a nested grid by name (O(1)).
  const Grid* find_grid(std::string_view grid_name) const;

  /// Total host count at full detail.
  std::size_t host_count() const noexcept { return host_count_; }

 private:
  SourceSnapshot() = default;
  void index_grid(const Grid& grid);
  void compute_summary() const;

  std::string name_;
  Report report_;
  mutable std::once_flag summary_once_;
  mutable SummaryInfo summary_;
  /// One map for every cluster reduction (snapshot-owned clusters filled by
  /// compute_summary, foreign ones on demand).  References handed out are
  /// stable: unordered_map never relocates nodes on insert.
  mutable std::shared_mutex summaries_mutex_;
  mutable std::unordered_map<const Cluster*, SummaryInfo> cluster_summaries_;
  struct FragmentSlot {
    std::once_flag once;
    std::string bytes;
  };
  mutable std::array<FragmentSlot, kFragmentSlots> fragments_;
  std::string authority_;
  std::int64_t fetched_at_ = 0;
  bool is_grid_ = false;
  bool reachable_ = true;
  std::size_t host_count_ = 0;
  std::unordered_map<std::string_view, const Cluster*> cluster_index_;
  std::unordered_map<std::string_view, const Grid*> grid_index_;
};

/// Level-1 hash table: data source name -> latest snapshot.
///
/// Invalidation is per source, not global: every publish assigns the source
/// a fresh version from one monotonic counter (versions are unique across
/// sources, so equality of a recorded version pins both the source and the
/// exact snapshot), and a separate structure version bumps only when the
/// source *set* changes (a name added or removed).  Anything rendered from
/// store contents records the versions it read (render::Deps) and stays
/// valid until one of *those* changes — publishing source A no longer
/// invalidates work derived from sources B..Z.  This replaces the old
/// global epoch() counter, which forced exactly that mass eviction.
class Store {
 public:
  /// One source together with the version its snapshot was published at.
  struct Versioned {
    std::shared_ptr<const SourceSnapshot> snapshot;
    std::uint64_t version = 0;
  };

  /// Atomically publish a new snapshot for its source.
  void publish(std::shared_ptr<const SourceSnapshot> snapshot);

  /// Latest snapshot for a source (nullptr when unknown).  Lock held only
  /// for the map lookup; the returned snapshot is immutable.
  std::shared_ptr<const SourceSnapshot> get(std::string_view source) const;

  /// All snapshots ordered by source name (stable report output).
  std::vector<std::shared_ptr<const SourceSnapshot>> all() const;

  /// All snapshots with their publish versions; when `structure_version`
  /// is non-null it receives the structure version observed under the same
  /// lock, so a renderer records a mutually consistent dependency set.
  std::vector<Versioned> all_versioned(
      std::uint64_t* structure_version = nullptr) const;

  /// Publish version of one source; 0 when the source is unknown (real
  /// versions start at 1, so 0 never validates a recorded dependency).
  std::uint64_t source_version(std::string_view source) const;

  /// Bumped only when a source joins or leaves the set.
  std::uint64_t structure_version() const noexcept {
    return structure_version_.load(std::memory_order_acquire);
  }

  /// Remove a source entirely (dynamic children that left the tree).
  void remove(std::string_view source);

  std::size_t size() const;

 private:
  std::atomic<std::uint64_t> version_counter_{0};
  std::atomic<std::uint64_t> structure_version_{0};
  mutable std::shared_mutex mutex_;
  std::map<std::string, Versioned, std::less<>> snapshots_;
};

}  // namespace ganglia::gmetad
