// Soft-state tree membership (the paper's §4 future-work extension).
//
// "We would like to incorporate a wide-area trust model similar to MDS,
// where parents have no explicit knowledge of their children.  Children in
// an MDS tree periodically send join messages to their parents, who verify
// trust via a cryptographic certificate sent with the message.  Nodes are
// automatically pruned from the tree if their join messages cease."
//
// We implement exactly that shape: a child periodically sends
//
//   JOIN <name> <address> <authority-url> <mac>\n
//
// to its parent's interactive port, where <mac> authenticates the message
// fields under a shared key.  The parent adds (or refreshes) a dynamic data
// source for the child and prunes it when joins stop arriving for
// `expiry_s`.  The MAC here is a keyed hash, standing in for the MDS
// certificate — the protocol shape, not the cryptography, is what the
// paper sketches.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace ganglia::gmetad {

/// Keyed message authenticator (FNV-based sponge; NOT cryptographically
/// strong — a stand-in for the certificate scheme the paper references).
std::string join_mac(std::string_view key, std::string_view message);

/// Constant-time MAC comparison (no early exit on mismatching bytes).
bool mac_equal(std::string_view expected, std::string_view provided);

struct JoinRequest {
  std::string name;       ///< child grid name (data source name)
  std::string address;    ///< child's XML port ("host:port")
  std::string authority;  ///< child's advertised authority URL

  /// The canonical string covered by the MAC.
  std::string canonical() const { return name + " " + address + " " + authority; }
};

/// Render "JOIN ..." line for a child to send.
std::string format_join_line(const JoinRequest& request, std::string_view key);

/// Parse + authenticate a join line.  Errc::refused on MAC mismatch or when
/// the key is empty (joins disabled).
Result<JoinRequest> parse_join_line(std::string_view line, std::string_view key);

/// Parent-side registry of dynamically joined children.  Internally
/// synchronised: refresh() arrives on server threads while prune() runs on
/// the poll scheduler, so every member takes the registry mutex.
class JoinRegistry {
 public:
  /// Default cap on dynamic children — bounds the damage a rogue holder of
  /// the join key can do to the source table.
  static constexpr std::size_t kDefaultMaxChildren = 256;

  explicit JoinRegistry(std::int64_t expiry_s,
                        std::size_t max_children = kDefaultMaxChildren)
      : expiry_s_(expiry_s), max_children_(max_children) {}

  struct Child {
    JoinRequest request;
    std::int64_t last_join_s = 0;
  };

  /// Record a fresh, authenticated join.  Returns true when the child is
  /// new (caller should add a data source); Errc::refused when admitting a
  /// new child would exceed the cap (refreshes of known children always
  /// succeed).
  Result<bool> refresh(const JoinRequest& request, std::int64_t now);

  /// Children whose joins lapsed; they are removed from the registry and
  /// returned so the caller can drop their data sources.
  std::vector<Child> prune(std::int64_t now);

  /// Drop one child by name (e.g. when its source is retired early).
  bool remove(const std::string& name);

  std::vector<Child> children() const;
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return children_.size();
  }
  std::size_t max_children() const noexcept { return max_children_; }

 private:
  std::int64_t expiry_s_;
  std::size_t max_children_;
  mutable std::mutex mutex_;
  std::map<std::string, Child> children_;
};

}  // namespace ganglia::gmetad
