#include "gmetad/join.hpp"

#include "common/strings.hpp"

namespace ganglia::gmetad {

std::string join_mac(std::string_view key, std::string_view message) {
  // Sponge over (key || message || key) with two FNV-1a lanes started from
  // different offsets; rendered as 32 hex chars.
  auto lane = [&](std::uint64_t h) {
    const auto absorb = [&h](std::string_view s) {
      for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
      }
    };
    absorb(key);
    absorb(message);
    absorb(key);
    // Final avalanche.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  const std::uint64_t a = lane(0xcbf29ce484222325ULL);
  const std::uint64_t b = lane(0x84222325cbf29ce4ULL);
  return strprintf("%016llx%016llx", static_cast<unsigned long long>(a),
                   static_cast<unsigned long long>(b));
}

std::string format_join_line(const JoinRequest& request, std::string_view key) {
  return "JOIN " + request.canonical() + " " +
         join_mac(key, request.canonical()) + "\n";
}

Result<JoinRequest> parse_join_line(std::string_view line,
                                    std::string_view key) {
  if (key.empty()) {
    return Err(Errc::refused, "join protocol disabled (no join_key)");
  }
  const auto fields = split_ws(trim(line));
  if (fields.size() != 5 || fields[0] != "JOIN") {
    return Err(Errc::parse_error,
               "expected 'JOIN <name> <address> <authority> <mac>'");
  }
  JoinRequest request;
  request.name = std::string(fields[1]);
  request.address = std::string(fields[2]);
  request.authority = std::string(fields[3]);
  if (request.address.find(':') == std::string::npos) {
    return Err(Errc::parse_error, "join address must be host:port");
  }
  const std::string expected = join_mac(key, request.canonical());
  if (expected != fields[4]) {
    return Err(Errc::refused, "join MAC verification failed for '" +
                                  request.name + "'");
  }
  return request;
}

bool JoinRegistry::refresh(const JoinRequest& request, std::int64_t now) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = children_.try_emplace(request.name);
  it->second.request = request;
  it->second.last_join_s = now;
  return inserted;
}

std::vector<JoinRegistry::Child> JoinRegistry::prune(std::int64_t now) {
  std::lock_guard lock(mutex_);
  std::vector<Child> expired;
  for (auto it = children_.begin(); it != children_.end();) {
    if (now - it->second.last_join_s > expiry_s_) {
      expired.push_back(it->second);
      it = children_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::vector<JoinRegistry::Child> JoinRegistry::children() const {
  std::lock_guard lock(mutex_);
  std::vector<Child> out;
  out.reserve(children_.size());
  for (const auto& [name, child] : children_) {
    (void)name;
    out.push_back(child);
  }
  return out;
}

}  // namespace ganglia::gmetad
