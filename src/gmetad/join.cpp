#include "gmetad/join.hpp"

#include "common/strings.hpp"

namespace ganglia::gmetad {

std::string join_mac(std::string_view key, std::string_view message) {
  // Sponge over (key || message || key) with two FNV-1a lanes started from
  // different offsets; rendered as 32 hex chars.
  auto lane = [&](std::uint64_t h) {
    const auto absorb = [&h](std::string_view s) {
      for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
      }
    };
    absorb(key);
    absorb(message);
    absorb(key);
    // Final avalanche.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  };
  const std::uint64_t a = lane(0xcbf29ce484222325ULL);
  const std::uint64_t b = lane(0x84222325cbf29ce4ULL);
  return strprintf("%016llx%016llx", static_cast<unsigned long long>(a),
                   static_cast<unsigned long long>(b));
}

bool mac_equal(std::string_view expected, std::string_view provided) {
  // Constant-time over the expected MAC's length: OR-accumulate the XOR of
  // every byte pair so the comparison never exits early on a mismatch.  A
  // timing-observant client must not learn how long a prefix of its forged
  // MAC was correct.  Length is public (the format fixes it at 32 hex
  // chars), so rejecting a wrong-length MAC immediately leaks nothing.
  if (expected.size() != provided.size()) return false;
  unsigned char acc = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    acc = static_cast<unsigned char>(
        acc | (static_cast<unsigned char>(expected[i]) ^
               static_cast<unsigned char>(provided[i])));
  }
  return acc == 0;
}

std::string format_join_line(const JoinRequest& request, std::string_view key) {
  return "JOIN " + request.canonical() + " " +
         join_mac(key, request.canonical()) + "\n";
}

Result<JoinRequest> parse_join_line(std::string_view line,
                                    std::string_view key) {
  if (key.empty()) {
    return Err(Errc::refused, "join protocol disabled (no join_key)");
  }
  const auto fields = split_ws(trim(line));
  if (fields.size() != 5 || fields[0] != "JOIN") {
    return Err(Errc::parse_error,
               "expected 'JOIN <name> <address> <authority> <mac>'");
  }
  JoinRequest request;
  request.name = std::string(fields[1]);
  request.address = std::string(fields[2]);
  request.authority = std::string(fields[3]);
  if (request.address.find(':') == std::string::npos) {
    return Err(Errc::parse_error, "join address must be host:port");
  }
  const std::string expected = join_mac(key, request.canonical());
  if (!mac_equal(expected, fields[4])) {
    return Err(Errc::refused, "join MAC verification failed for '" +
                                  request.name + "'");
  }
  return request;
}

Result<bool> JoinRegistry::refresh(const JoinRequest& request,
                                   std::int64_t now) {
  std::lock_guard lock(mutex_);
  auto it = children_.find(request.name);
  if (it == children_.end()) {
    if (children_.size() >= max_children_) {
      return Err(Errc::refused,
                 "join registry full (" + std::to_string(max_children_) +
                     " children); rejecting '" + request.name + "'");
    }
    it = children_.emplace(request.name, Child{}).first;
    it->second.request = request;
    it->second.last_join_s = now;
    return true;
  }
  it->second.request = request;
  it->second.last_join_s = now;
  return false;
}

std::vector<JoinRegistry::Child> JoinRegistry::prune(std::int64_t now) {
  std::lock_guard lock(mutex_);
  std::vector<Child> expired;
  for (auto it = children_.begin(); it != children_.end();) {
    if (now - it->second.last_join_s > expiry_s_) {
      expired.push_back(it->second);
      it = children_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

bool JoinRegistry::remove(const std::string& name) {
  std::lock_guard lock(mutex_);
  return children_.erase(name) != 0;
}

std::vector<JoinRegistry::Child> JoinRegistry::children() const {
  std::lock_guard lock(mutex_);
  std::vector<Child> out;
  out.reserve(children_.size());
  for (const auto& [name, child] : children_) {
    (void)name;
    out.push_back(child);
  }
  return out;
}

}  // namespace ganglia::gmetad
