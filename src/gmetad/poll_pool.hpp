// Fixed worker pool for the concurrent poll pipeline.
//
// Wide-area polling is latency-bound: a round's wall-clock cost is the sum
// of every source's RTT when fetches run back-to-back, but only the *max*
// RTT when they overlap.  The pool holds N long-lived workers fed from a
// single queue; the poll scheduler submits one task per due source and the
// workers overlap the blocking fetches (and the parse/summarise/archive
// work that follows each one).
//
// The pool is deliberately minimal: no futures, no task results — callers
// coordinate completion themselves (poll_once uses a std::latch; the
// daemon's due-time scheduler uses per-source in-flight flags).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ganglia::gmetad {

class PollPool {
 public:
  /// Spawns `threads` workers immediately (at least 1).
  explicit PollPool(std::size_t threads);

  /// Drains nothing: pending tasks are abandoned, running tasks are
  /// joined.  Callers that need completion must wait before destruction.
  ~PollPool();

  PollPool(const PollPool&) = delete;
  PollPool& operator=(const PollPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task for the next free worker.  Safe from any thread.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ganglia::gmetad
