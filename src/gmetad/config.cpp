#include "gmetad/config.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace ganglia::gmetad {

namespace {

/// Tokenise one config line: whitespace-separated words, double-quoted
/// strings kept whole (quotes stripped).  '#' starts a comment.
Result<std::vector<std::string>> tokenize(std::string_view line,
                                          std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t') {
      ++i;
    } else if (c == '#') {
      break;
    } else if (c == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        return Err(Errc::parse_error,
                   "unterminated quote on line " + std::to_string(line_no));
      }
      tokens.emplace_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
             line[end] != '#') {
        ++end;
      }
      tokens.emplace_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

Error bad_line(std::size_t line_no, const std::string& what) {
  return Err(Errc::parse_error,
             what + " on line " + std::to_string(line_no));
}

}  // namespace

Result<GmetadConfig> parse_config(std::string_view text) {
  GmetadConfig config;
  std::size_t line_no = 0;
  for (std::string_view line : split(text, '\n')) {
    ++line_no;
    auto tokens_r = tokenize(line, line_no);
    if (!tokens_r.ok()) return tokens_r.error();
    const auto& tokens = *tokens_r;
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    if (key == "gridname") {
      if (tokens.size() != 2) return bad_line(line_no, "gridname needs a value");
      config.grid_name = tokens[1];
    } else if (key == "authority") {
      if (tokens.size() != 2) return bad_line(line_no, "authority needs a URL");
      config.authority = tokens[1];
    } else if (key == "mode") {
      if (tokens.size() != 2) return bad_line(line_no, "mode needs a value");
      if (tokens[1] == "n-level") {
        config.mode = Mode::n_level;
      } else if (tokens[1] == "one-level" || tokens[1] == "1-level") {
        config.mode = Mode::one_level;
      } else {
        return bad_line(line_no, "mode must be n-level or one-level");
      }
    } else if (key == "data_source") {
      if (tokens.size() < 3) {
        return bad_line(line_no,
                        "data_source needs a name and at least one address");
      }
      DataSourceConfig ds;
      ds.name = tokens[1];
      std::size_t first_addr = 2;
      // Optional polling interval between name and addresses.
      if (auto interval = parse_i64(tokens[2]);
          interval && tokens[2].find(':') == std::string::npos) {
        if (*interval <= 0) return bad_line(line_no, "bad poll interval");
        ds.poll_interval_s = *interval;
        first_addr = 3;
      }
      for (std::size_t i = first_addr; i < tokens.size(); ++i) {
        if (tokens[i].rfind("fed=", 0) == 0) {
          const std::string fed = tokens[i].substr(4);
          if (fed.find(':') == std::string::npos) {
            return bad_line(line_no, "fed= address '" + fed +
                                         "' must be host:port");
          }
          ds.federation_address = fed;
          continue;
        }
        if (tokens[i].find(':') == std::string::npos) {
          return bad_line(line_no, "address '" + tokens[i] +
                                       "' must be host:port");
        }
        ds.addresses.push_back(tokens[i]);
      }
      if (ds.addresses.empty()) {
        return bad_line(line_no, "data_source needs at least one address");
      }
      for (const DataSourceConfig& existing : config.sources) {
        if (existing.name == ds.name) {
          return bad_line(line_no, "duplicate data_source '" + ds.name + "'");
        }
      }
      config.sources.push_back(std::move(ds));
    } else if (key == "trusted_hosts") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        config.trusted_hosts.push_back(tokens[i]);
      }
    } else if (key == "xml_port") {
      auto port = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!port || *port > 65535) return bad_line(line_no, "bad xml_port");
      config.xml_bind = "127.0.0.1:" + std::to_string(*port);
    } else if (key == "xml_bind") {
      if (tokens.size() != 2) return bad_line(line_no, "xml_bind needs host:port");
      config.xml_bind = tokens[1];
    } else if (key == "interactive_port") {
      auto port = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!port || *port > 65535) {
        return bad_line(line_no, "bad interactive_port");
      }
      config.interactive_bind = "127.0.0.1:" + std::to_string(*port);
    } else if (key == "interactive_bind") {
      if (tokens.size() != 2) {
        return bad_line(line_no, "interactive_bind needs host:port");
      }
      config.interactive_bind = tokens[1];
    } else if (key == "http_port") {
      auto port = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!port || *port > 65535) return bad_line(line_no, "bad http_port");
      config.http_bind = "127.0.0.1:" + std::to_string(*port);
    } else if (key == "http_bind") {
      if (tokens.size() != 2) {
        return bad_line(line_no, "http_bind needs host:port");
      }
      config.http_bind = tokens[1];
    } else if (key == "http_cache_ttl") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t < 0) return bad_line(line_no, "bad http_cache_ttl");
      config.http_cache_ttl_s = *t;
    } else if (key == "http_max_connections") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad http_max_connections");
      config.http_max_connections = *t;
    } else if (key == "http_event_threads") {
      auto t = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t > 256) return bad_line(line_no, "bad http_event_threads");
      config.http_event_threads = static_cast<std::size_t>(*t);
    } else if (key == "http_idle_timeout") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad http_idle_timeout");
      config.http_idle_timeout_s = *t;
    } else if (key == "query_max_scan") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad query_max_scan");
      config.query_max_scan = *t;
    } else if (key == "query_max_groups") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad query_max_groups");
      config.query_max_groups = *t;
    } else if (key == "query_max_result_bytes") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad query_max_result_bytes");
      config.query_max_result_bytes = *t;
    } else if (key == "poll_threads") {
      auto t = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t > 256) return bad_line(line_no, "bad poll_threads");
      config.poll_threads = static_cast<std::size_t>(*t);
    } else if (key == "connect_timeout") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad connect_timeout");
      config.connect_timeout_s = *t;
    } else if (key == "archive") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        return bad_line(line_no, "archive must be on or off");
      }
      config.archive_enabled = tokens[1] == "on";
    } else if (key == "archive_step") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad archive_step");
      config.archive_step_s = *t;
    } else if (key == "archive_dir") {
      if (tokens.size() != 2) return bad_line(line_no, "archive_dir needs a path");
      config.archive_dir = tokens[1];
    } else if (key == "archive_flush_interval") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t < 0) return bad_line(line_no, "bad archive_flush_interval");
      config.archive_flush_interval_s = *t;
    } else if (key == "join_key") {
      if (tokens.size() != 2) return bad_line(line_no, "join_key needs a value");
      config.join_key = tokens[1];
    } else if (key == "alarm") {
      // alarm "<name>" <metric> <op> <threshold> [hold <s>] [clear <v>]
      //       [hosts <regex>] [clusters <regex>]
      if (tokens.size() < 5) {
        return bad_line(line_no,
                        "alarm needs: name metric op threshold [options]");
      }
      GmetadConfig::AlarmRuleConfig rule;
      rule.name = tokens[1];
      rule.metric = tokens[2];
      rule.comparison = tokens[3];
      static constexpr std::string_view kOps[] = {">", ">=", "<",
                                                  "<=", "==", "!="};
      bool op_ok = false;
      for (std::string_view op : kOps) op_ok = op_ok || rule.comparison == op;
      if (!op_ok) return bad_line(line_no, "bad alarm comparison");
      auto threshold = parse_double(tokens[4]);
      if (!threshold) return bad_line(line_no, "bad alarm threshold");
      rule.threshold = *threshold;
      for (std::size_t i = 5; i + 1 < tokens.size(); i += 2) {
        if (tokens[i] == "hold") {
          auto hold = parse_i64(tokens[i + 1]);
          if (!hold || *hold < 0) return bad_line(line_no, "bad alarm hold");
          rule.hold_s = *hold;
        } else if (tokens[i] == "clear") {
          auto clear = parse_double(tokens[i + 1]);
          if (!clear) return bad_line(line_no, "bad alarm clear value");
          rule.clear_threshold = *clear;
        } else if (tokens[i] == "hosts") {
          rule.host_pattern = tokens[i + 1];
        } else if (tokens[i] == "clusters") {
          rule.cluster_pattern = tokens[i + 1];
        } else {
          return bad_line(line_no,
                          "unknown alarm option '" + tokens[i] + "'");
        }
      }
      if ((tokens.size() - 5) % 2 != 0) {
        return bad_line(line_no, "alarm option missing its value");
      }
      config.alarms.push_back(std::move(rule));
    } else if (key == "join_expiry") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad join_expiry");
      config.join_expiry_s = *t;
    } else if (key == "join_max_children") {
      auto t = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t == 0) return bad_line(line_no, "bad join_max_children");
      config.join_max_children = static_cast<std::size_t>(*t);
    } else if (key == "gossip_port") {
      auto port = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!port || *port > 65535) return bad_line(line_no, "bad gossip_port");
      config.gossip_bind = "127.0.0.1:" + std::to_string(*port);
    } else if (key == "gossip_bind") {
      if (tokens.size() != 2) {
        return bad_line(line_no, "gossip_bind needs host:port");
      }
      config.gossip_bind = tokens[1];
    } else if (key == "gossip_seed") {
      if (tokens.size() < 2) {
        return bad_line(line_no, "gossip_seed needs at least one address");
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[i].find(':') == std::string::npos) {
          return bad_line(line_no, "gossip_seed '" + tokens[i] +
                                       "' must be host:port");
        }
        config.gossip_seeds.push_back(tokens[i]);
      }
    } else if (key == "gossip_interval") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad gossip_interval");
      config.gossip_interval_s = *t;
    } else if (key == "gossip_fanout") {
      auto t = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t == 0 || *t > 64) return bad_line(line_no, "bad gossip_fanout");
      config.gossip_fanout = static_cast<std::size_t>(*t);
    } else if (key == "t_fail") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad t_fail");
      config.gossip_t_fail_s = *t;
    } else if (key == "t_cleanup") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t <= 0) return bad_line(line_no, "bad t_cleanup");
      config.gossip_t_cleanup_s = *t;
    } else if (key == "gossip_aggregate") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        return bad_line(line_no, "gossip_aggregate must be on or off");
      }
      config.gossip_aggregate = tokens[1] == "on";
    } else if (key == "gossip_parent") {
      if (tokens.size() != 2) {
        return bad_line(line_no, "gossip_parent needs an id");
      }
      config.gossip_parent = tokens[1];
    } else if (key == "standby_for") {
      if (tokens.size() != 2) return bad_line(line_no, "standby_for needs an id");
      config.standby_for.push_back(tokens[1]);
    } else if (key == "gossip_delta") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        return bad_line(line_no, "gossip_delta must be on or off");
      }
      config.gossip_delta = tokens[1] == "on";
    } else if (key == "gossip_piggyback") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        return bad_line(line_no, "gossip_piggyback must be on or off");
      }
      config.gossip_piggyback = tokens[1] == "on";
    } else if (key == "gossip_max_digest") {
      auto t = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t < 4096 || *t > (64u << 20)) {
        return bad_line(line_no, "bad gossip_max_digest");
      }
      config.gossip_max_digest = static_cast<std::size_t>(*t);
    } else if (key == "gossip_resync_backoff") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t < 0) return bad_line(line_no, "bad gossip_resync_backoff");
      config.gossip_resync_backoff = *t;
    } else if (key == "federation") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        return bad_line(line_no, "federation must be on or off");
      }
      config.federation_enabled = tokens[1] == "on";
    } else if (key == "federation_port") {
      auto port = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!port || *port > 65535) return bad_line(line_no, "bad federation_port");
      config.federation_bind = "127.0.0.1:" + std::to_string(*port);
    } else if (key == "federation_bind") {
      if (tokens.size() != 2) {
        return bad_line(line_no, "federation_bind needs host:port");
      }
      config.federation_bind = tokens[1];
    } else if (key == "federation_heartbeat") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t < 0) return bad_line(line_no, "bad federation_heartbeat");
      config.federation_heartbeat_s = *t;
    } else if (key == "federation_max_frame") {
      auto t = parse_u64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t < 4096 || *t > (64u << 20)) {
        return bad_line(line_no, "bad federation_max_frame");
      }
      config.federation_max_frame = static_cast<std::size_t>(*t);
    } else if (key == "federation_resync_backoff") {
      auto t = parse_i64(tokens.size() > 1 ? tokens[1] : "");
      if (!t || *t < 0) return bad_line(line_no, "bad federation_resync_backoff");
      config.federation_resync_backoff_s = *t;
    } else {
      return bad_line(line_no, "unknown directive '" + key + "'");
    }
  }
  return config;
}

Result<GmetadConfig> load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Err(Errc::io_error, "cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_config(text.str());
}

}  // namespace ganglia::gmetad
