// Data source with failover.
//
// "The wide-area Gmeta uses [redundant gmon state] to automatically
// fail-over when a cluster node malfunctions, preventing a node stop
// failure from disrupting its monitoring activities.  To handle
// intermittent failures, Gmeta retries the failed node periodically."
// (paper §1)
//
// fetch() tries the preferred address first and rotates through the
// remaining candidates on failure.  A success promotes the serving address
// to preferred; total failure leaves the source marked unreachable and the
// next poll round retries from the top — failures never cause permanent
// fissures in the tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "gmetad/config.hpp"
#include "net/transport.hpp"

namespace ganglia::gmetad {

class DataSource {
 public:
  explicit DataSource(DataSourceConfig config) : config_(std::move(config)) {}

  /// Download one full report, failing over across candidate addresses.
  /// On success records which address served.  On exhaustion returns
  /// Errc::exhausted carrying the last error detail.
  Result<std::string> fetch(net::Transport& transport, TimeUs timeout,
                            std::int64_t now_s);

  const DataSourceConfig& config() const noexcept { return config_; }
  const std::string& name() const noexcept { return config_.name; }
  std::int64_t poll_interval_s() const noexcept {
    return config_.poll_interval_s;
  }

  // -- health introspection ------------------------------------------------
  bool reachable() const noexcept { return reachable_; }
  std::size_t preferred_index() const noexcept { return preferred_; }
  const std::string& preferred_address() const {
    return config_.addresses[preferred_];
  }
  std::uint32_t consecutive_failures() const noexcept {
    return consecutive_failures_;
  }
  std::int64_t last_success_s() const noexcept { return last_success_s_; }
  std::uint64_t failovers() const noexcept { return failovers_; }
  const std::string& last_error() const noexcept { return last_error_; }

 private:
  DataSourceConfig config_;
  std::size_t preferred_ = 0;
  bool reachable_ = true;  ///< optimistic until the first poll says otherwise
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t failovers_ = 0;
  std::int64_t last_success_s_ = 0;
  std::string last_error_;
};

}  // namespace ganglia::gmetad
