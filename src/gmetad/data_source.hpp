// Data source with failover.
//
// "The wide-area Gmeta uses [redundant gmon state] to automatically
// fail-over when a cluster node malfunctions, preventing a node stop
// failure from disrupting its monitoring activities.  To handle
// intermittent failures, Gmeta retries the failed node periodically."
// (paper §1)
//
// fetch() tries the preferred address first and rotates through the
// remaining candidates on failure.  A success promotes the serving address
// to preferred; total failure leaves the source marked unreachable and the
// next poll round retries from the top — failures never cause permanent
// fissures in the tree.
//
// Concurrency: the poll pool runs at most one fetch() per source at a time
// (the scheduler never dispatches a source that is still in flight), but
// the health accessors are read from other threads — daemon status pages,
// tests, examples — while a fetch is running, so the scalar health fields
// are atomics and the last-error string sits behind its own mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "gmetad/config.hpp"
#include "net/transport.hpp"

namespace ganglia::gmetad {

class DataSource {
 public:
  explicit DataSource(DataSourceConfig config) : config_(std::move(config)) {}

  /// Download one full report, failing over across candidate addresses.
  /// On success records which address served.  On exhaustion returns
  /// Errc::exhausted carrying the last error detail.  Not reentrant: one
  /// fetch per source at a time (the poll scheduler guarantees this).
  Result<std::string> fetch(net::Transport& transport, TimeUs timeout,
                            std::int64_t now_s);

  const DataSourceConfig& config() const noexcept { return config_; }
  const std::string& name() const noexcept { return config_.name; }
  std::int64_t poll_interval_s() const noexcept {
    return config_.poll_interval_s;
  }

  // -- health introspection (safe to call while a fetch is in flight) ------
  bool reachable() const noexcept { return reachable_.load(std::memory_order_relaxed); }
  std::size_t preferred_index() const noexcept {
    return preferred_.load(std::memory_order_relaxed);
  }
  const std::string& preferred_address() const {
    return config_.addresses[preferred_index()];
  }
  std::uint32_t consecutive_failures() const noexcept {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  std::int64_t last_success_s() const noexcept {
    return last_success_s_.load(std::memory_order_relaxed);
  }
  std::uint64_t failovers() const noexcept {
    return failovers_.load(std::memory_order_relaxed);
  }
  std::string last_error() const {
    std::lock_guard lock(last_error_mutex_);
    return last_error_;
  }

 private:
  DataSourceConfig config_;
  std::atomic<std::size_t> preferred_{0};
  std::atomic<bool> reachable_{true};  ///< optimistic until the first poll
  std::atomic<std::uint32_t> consecutive_failures_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::int64_t> last_success_s_{0};
  mutable std::mutex last_error_mutex_;
  std::string last_error_;
};

}  // namespace ganglia::gmetad
