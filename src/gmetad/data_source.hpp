// Data source with failover.
//
// "The wide-area Gmeta uses [redundant gmon state] to automatically
// fail-over when a cluster node malfunctions, preventing a node stop
// failure from disrupting its monitoring activities.  To handle
// intermittent failures, Gmeta retries the failed node periodically."
// (paper §1)
//
// fetch() is a two-tier pipeline.  When the source has a federation
// address (configured `fed=host:port` or discovered via gossip metadata),
// the poll first runs over the binary delta protocol: a persistent
// fed::Session that transfers only changed rows and resyncs from full XML
// automatically on loss, restart, or corruption.  Any delta-path failure
// falls straight through to the legacy path — the preferred XML dump
// address first, rotating through the remaining candidates on failure —
// and starts a resync backoff so a dead delta port is not re-dialed on
// every poll.  A legacy success promotes the serving address to preferred;
// total failure leaves the source marked unreachable and the next poll
// round retries from the top — failures never cause permanent fissures in
// the tree.
//
// Concurrency: the poll pool runs at most one fetch() per source at a time
// (the scheduler never dispatches a source that is still in flight), but
// the health accessors are read from other threads — daemon status pages,
// tests, examples — while a fetch is running, so the scalar health fields
// are atomics and the last-error string sits behind its own mutex.  The
// delta session is additionally shared with the heartbeat tick (scheduler
// thread), so it hides behind session_mutex_; heartbeats try-lock and
// simply skip a source whose session is busy polling.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/cpu_timer.hpp"
#include "fed/session.hpp"
#include "gmetad/config.hpp"
#include "net/transport.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::gmetad {

class DataSource {
 public:
  explicit DataSource(DataSourceConfig config) : config_(std::move(config)) {}

  /// One poll's worth of data: either a parsed report (delta path) or the
  /// raw XML body (legacy dump path, parsed by the caller).
  struct Fetched {
    std::string body;                    ///< raw XML (legacy path only)
    std::optional<Report> report;        ///< parsed document (delta path)
    std::size_t bytes = 0;               ///< wire bytes this poll moved
    bool via_delta = false;              ///< answered incrementally
    bool resync = false;                 ///< delta session did a full resync
  };

  /// Download one report, delta session first, failing over across the
  /// candidate XML addresses otherwise.  On exhaustion returns
  /// Errc::exhausted carrying the last error detail.  Not reentrant: one
  /// fetch per source at a time (the poll scheduler guarantees this).
  /// `meter`, when set, is charged for parse/apply CPU, never I/O waits.
  Result<Fetched> fetch(net::Transport& transport, TimeUs timeout,
                        std::int64_t now_s, CpuMeter* meter = nullptr);

  /// Keep-alive tick for the delta session: pings the publisher when the
  /// session is live and idle.  Skips silently when a poll is in flight.
  void heartbeat(net::Transport& transport, TimeUs timeout);

  /// Offer one membership digest exchange a ride on the live delta
  /// session (gossip::Agent::Carrier semantics): nullopt when there is no
  /// live session or a poll holds it — the agent then dials gossip
  /// directly — otherwise the exchange's result.
  std::optional<Result<std::string>> piggyback_digest(
      net::Transport& transport, TimeUs timeout, std::string_view payload);

  const DataSourceConfig& config() const noexcept { return config_; }
  const std::string& name() const noexcept { return config_.name; }
  std::int64_t poll_interval_s() const noexcept {
    return config_.poll_interval_s;
  }

  /// Swap the federation endpoint (gossip-discovered topology).  Resets
  /// the session when the address actually changes.
  void set_federation_address(const std::string& address);
  std::string federation_address() const {
    std::lock_guard lock(session_mutex_);
    return config_.federation_address;
  }

  // -- health introspection (safe to call while a fetch is in flight) ------
  bool reachable() const noexcept { return reachable_.load(std::memory_order_relaxed); }
  std::size_t preferred_index() const noexcept {
    return preferred_.load(std::memory_order_relaxed);
  }
  const std::string& preferred_address() const {
    return config_.addresses[preferred_index()];
  }
  std::uint32_t consecutive_failures() const noexcept {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  std::int64_t last_success_s() const noexcept {
    return last_success_s_.load(std::memory_order_relaxed);
  }
  std::uint64_t failovers() const noexcept {
    return failovers_.load(std::memory_order_relaxed);
  }
  std::string last_error() const {
    std::lock_guard lock(last_error_mutex_);
    return last_error_;
  }

  // -- delta federation introspection --------------------------------------
  std::uint64_t delta_polls() const noexcept {
    return delta_polls_.load(std::memory_order_relaxed);
  }
  std::uint64_t full_polls() const noexcept {
    return full_polls_.load(std::memory_order_relaxed);
  }
  std::uint64_t delta_resyncs() const noexcept {
    return delta_resyncs_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_delta() const noexcept {
    return bytes_delta_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_full() const noexcept {
    return bytes_full_.load(std::memory_order_relaxed);
  }
  /// Conservative estimate of bytes the delta path avoided transferring:
  /// Σ over delta polls of (last full-size observed − delta bytes).
  std::uint64_t bytes_saved() const noexcept {
    return bytes_saved_.load(std::memory_order_relaxed);
  }
  /// "xml" (no delta endpoint), "backoff", "delta" (live session), or
  /// "sync" (endpoint known, session not yet established).
  std::string session_mode(std::int64_t now_s) const;
  /// Membership digest exchanges carried on the poll stream.
  std::uint64_t piggyback_digests() const noexcept {
    return piggyback_digests_.load(std::memory_order_relaxed);
  }

 private:
  Result<Fetched> fetch_delta(net::Transport& transport, TimeUs timeout,
                              std::int64_t now_s, CpuMeter* meter);

  DataSourceConfig config_;
  std::atomic<std::size_t> preferred_{0};
  std::atomic<bool> reachable_{true};  ///< optimistic until the first poll
  std::atomic<std::uint32_t> consecutive_failures_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::int64_t> last_success_s_{0};
  mutable std::mutex last_error_mutex_;
  std::string last_error_;

  mutable std::mutex session_mutex_;
  std::unique_ptr<fed::Session> session_;
  std::atomic<std::int64_t> delta_retry_after_{0};
  std::atomic<bool> session_live_{false};
  std::atomic<std::uint64_t> delta_polls_{0};
  std::atomic<std::uint64_t> full_polls_{0};
  std::atomic<std::uint64_t> delta_resyncs_{0};
  std::atomic<std::uint64_t> bytes_delta_{0};
  std::atomic<std::uint64_t> bytes_full_{0};
  std::atomic<std::uint64_t> bytes_saved_{0};
  std::atomic<std::uint64_t> last_full_bytes_{0};
  std::atomic<std::uint64_t> piggyback_digests_{0};
};

}  // namespace ganglia::gmetad
