// Dependency sets for rendered responses.
//
// The store used to expose one global epoch, bumped on every publish, and
// every cached response validated against it — so a publish for source A
// evicted cached pages for sources B..Z even though their bytes could not
// have changed.  A Deps records exactly what a rendered body was computed
// from: the per-source versions it read, and (for responses whose shape
// depends on which sources exist at all — whole-tree dumps, regex queries,
// the meta view) the store's structure version.  A response is still valid
// iff every recorded version is still current.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ganglia::gmetad {
class Store;
}

namespace ganglia::gmetad::render {

struct SourceDep {
  std::string name;
  std::uint64_t version = 0;  ///< Store::source_version at render time
};

struct Deps {
  std::vector<SourceDep> sources;
  /// True when the response depends on the source *set* (membership/order),
  /// not just the listed sources' contents.
  bool structure = false;
  std::uint64_t structure_version = 0;

  /// Still valid against the store?  A listed source that was removed (or
  /// republished under a new version) invalidates; sources the response
  /// never read do not.
  bool current(const Store& store) const;

  /// Stable hash of the dependency versions, folded into ETags so a
  /// validator from an older snapshot can never match again even when the
  /// re-rendered bytes are identical.
  std::uint64_t fingerprint() const noexcept;
};

}  // namespace ganglia::gmetad::render
