#include "gmetad/render/json_backend.hpp"

#include <cassert>

namespace ganglia::gmetad::render {

JsonBackend::JsonBackend(std::string& out, bool fragment)
    : out_(out), w_(out), fragment_(fragment) {
  if (fragment_) w_.begin_array();
}

void JsonBackend::finish_fragment() {
  assert(fragment_ && "finish_fragment() on a document backend");
  assert(!out_.empty() && out_.front() == '[');
  out_.erase(0, 1);  // items stay comma-joined, ready for raw() splicing
}

void JsonBackend::begin_document(const DocumentInfo& info) {
  w_.begin_object();
  w_.key("version");
  w_.value(info.version);
  w_.key("source");
  w_.value(info.source);
  w_.key("clusters");  // the document's own level holds only the self grid
  w_.begin_array();
  w_.end_array();
  w_.key("grids");
  w_.begin_array();
  w_.begin_object();
  w_.key("name");
  w_.value(info.grid_name);
  if (!info.authority.empty()) {
    w_.key("authority");
    w_.value(info.authority);
  }
  w_.key("localtime");
  w_.value(static_cast<std::int64_t>(info.localtime));
  grids_.push_back(Phase::attrs);
}

void JsonBackend::end_document() {
  pop_grid_frame();  // the self grid
  w_.end_array();    // "grids"
  w_.end_object();   // report
  out_ += '\n';
}

void JsonBackend::ensure_clusters() {
  assert(!grids_.empty());
  if (grids_.back() == Phase::attrs) {
    w_.key("clusters");
    w_.begin_array();
    grids_.back() = Phase::clusters;
  }
}

void JsonBackend::ensure_grids() {
  assert(!grids_.empty());
  if (grids_.back() == Phase::attrs) {
    w_.key("clusters");
    w_.begin_array();
    w_.end_array();
    w_.key("grids");
    w_.begin_array();
    grids_.back() = Phase::grids;
  } else if (grids_.back() == Phase::clusters) {
    w_.end_array();
    w_.key("grids");
    w_.begin_array();
    grids_.back() = Phase::grids;
  }
}

void JsonBackend::close_phases() {
  assert(!grids_.empty());
  const Phase phase = grids_.back();
  if (phase == Phase::closed) return;
  if (phase == Phase::attrs) {
    w_.key("clusters");
    w_.begin_array();
    w_.end_array();
  } else if (phase == Phase::clusters) {
    w_.end_array();
  }
  if (phase != Phase::grids) {
    w_.key("grids");
    w_.begin_array();
  }
  w_.end_array();
  grids_.back() = Phase::closed;
}

void JsonBackend::pop_grid_frame() {
  close_phases();
  w_.end_object();
  grids_.pop_back();
}

void JsonBackend::begin_cluster(const Cluster& cluster) {
  if (!grids_.empty()) ensure_clusters();
  w_.begin_object();
  w_.key("name");
  w_.value(cluster.name);
  w_.key("localtime");
  w_.value(static_cast<std::int64_t>(cluster.localtime));
  if (!cluster.owner.empty()) {
    w_.key("owner");
    w_.value(cluster.owner);
  }
  in_cluster_ = true;
  cluster_hosts_open_ = false;
  cluster_summary_done_ = false;
}

void JsonBackend::end_cluster(const Cluster&) {
  if (cluster_hosts_open_) {
    w_.end_array();
  } else if (!cluster_summary_done_) {
    w_.key("hosts");  // a full-detail cluster always carries the array
    w_.begin_array();
    w_.end_array();
  }
  w_.end_object();
  in_cluster_ = false;
  cluster_hosts_open_ = false;
  cluster_summary_done_ = false;
}

void JsonBackend::begin_grid(const Grid& grid) {
  if (!grids_.empty()) ensure_grids();
  w_.begin_object();
  w_.key("name");
  w_.value(grid.name);
  if (!grid.authority.empty()) {
    w_.key("authority");
    w_.value(grid.authority);
  }
  w_.key("localtime");
  w_.value(static_cast<std::int64_t>(grid.localtime));
  grids_.push_back(Phase::attrs);
}

void JsonBackend::end_grid(const Grid&) { pop_grid_frame(); }

void JsonBackend::begin_host(const Host& host) {
  if (in_cluster_ && !cluster_hosts_open_) {
    w_.key("hosts");
    w_.begin_array();
    cluster_hosts_open_ = true;
  }
  w_.begin_object();
  w_.key("name");
  w_.value(host.name);
  w_.key("ip");
  w_.value(host.ip);
  w_.key("up");
  w_.value(host.is_up());
  w_.key("reported");
  w_.value(static_cast<std::int64_t>(host.reported));
  w_.key("tn");
  w_.value(static_cast<std::uint64_t>(host.tn));
  w_.key("metrics");
  w_.begin_array();
  in_host_ = true;
}

void JsonBackend::end_host(const Host&) {
  w_.end_array();   // "metrics"
  w_.end_object();  // host
  in_host_ = false;
}

void JsonBackend::metric(const Host&, const Metric& metric) {
  w_.begin_object();
  w_.key("name");
  w_.value(metric.name);
  w_.key("value");
  w_.value(metric.value);
  if (metric.is_numeric()) {
    w_.key("numeric");
    w_.value(metric.numeric);
  }
  w_.key("type");
  w_.value(metric_type_name(metric.type));
  if (!metric.units.empty()) {
    w_.key("units");
    w_.value(metric.units);
  }
  w_.key("tn");
  w_.value(static_cast<std::uint64_t>(metric.tn));
  w_.end_object();
}

void JsonBackend::write_summary_object(const SummaryInfo& summary) {
  w_.begin_object();
  w_.key("hosts_up");
  w_.value(static_cast<std::uint64_t>(summary.hosts_up));
  w_.key("hosts_down");
  w_.value(static_cast<std::uint64_t>(summary.hosts_down));
  w_.key("metrics");
  w_.begin_object();
  for (const auto& [name, m] : summary.metrics) {
    w_.key(name);
    w_.begin_object();
    w_.key("sum");
    w_.value(m.sum);
    w_.key("num");
    w_.value(static_cast<std::uint64_t>(m.num));
    w_.key("mean");
    w_.value(m.mean());
    if (!m.units.empty()) {
      w_.key("units");
      w_.value(m.units);
    }
    w_.end_object();
  }
  w_.end_object();
  w_.end_object();
}

void JsonBackend::summary(const SummaryInfo& summary) {
  w_.key("summary");
  write_summary_object(summary);
  if (in_cluster_) {
    cluster_summary_done_ = true;
  } else {
    assert(!grids_.empty() && grids_.back() == Phase::attrs);
    grids_.back() = Phase::closed;
  }
}

void JsonBackend::total(const SummaryInfo& total) {
  close_phases();  // both child arrays emitted before the grand total
  w_.key("total");
  write_summary_object(total);
}

void JsonBackend::splice_clusters(std::string_view bytes) {
  ensure_clusters();
  w_.raw(bytes);
}

void JsonBackend::splice_grids(std::string_view bytes) {
  ensure_grids();
  w_.raw(bytes);
}

}  // namespace ganglia::gmetad::render
