#include "gmetad/render/traversal.hpp"

namespace ganglia::gmetad::render {

void walk_host_subtree(const Host& host, Backend& backend) {
  backend.begin_host(host);
  for (const Metric& m : host.metrics) backend.metric(host, m);
  backend.end_host(host);
}

void walk_host_in_cluster(const Cluster& cluster, const Host& host,
                          Backend& backend) {
  backend.begin_cluster(cluster);
  walk_host_subtree(host, backend);
  backend.end_cluster(cluster);
}

void walk_cluster(const Cluster& cluster, Backend& backend) {
  backend.begin_cluster(cluster);
  if (cluster.summary) {
    backend.summary(*cluster.summary);
  } else {
    for (const auto& [name, host] : cluster.hosts) {
      (void)name;
      walk_host_subtree(host, backend);
    }
  }
  backend.end_cluster(cluster);
}

void walk_cluster_summary(const Cluster& cluster, const SummaryInfo& summary,
                          Backend& backend) {
  backend.begin_cluster(cluster);
  backend.summary(summary);
  backend.end_cluster(cluster);
}

void walk_grid(const Grid& grid, Backend& backend) {
  backend.begin_grid(grid);
  if (grid.summary) {
    backend.summary(*grid.summary);
  } else {
    for (const Cluster& c : grid.clusters) walk_cluster(c, backend);
    for (const Grid& g : grid.grids) walk_grid(g, backend);
  }
  backend.end_grid(grid);
}

void walk_grid_summary(const Grid& grid, const SummaryInfo& summary,
                       Backend& backend) {
  backend.begin_grid(grid);
  backend.summary(summary);
  backend.end_grid(grid);
}

void walk_source_clusters(const SourceSnapshot& snapshot, bool summary_only,
                          Backend& backend) {
  for (const Cluster& cluster : snapshot.clusters()) {
    if (summary_only) {
      // The reduction precomputed on the summarisation time scale: O(m),
      // independent of cluster size (paper §2.3.2).
      walk_cluster_summary(cluster, snapshot.cluster_summary(cluster),
                           backend);
    } else {
      walk_cluster(cluster, backend);
    }
  }
}

void walk_source_grids(const SourceSnapshot& snapshot, Mode mode,
                       bool summary_only, Backend& backend) {
  for (const Grid& grid : snapshot.grids()) {
    if (mode == Mode::n_level || summary_only || grid.is_summary_form()) {
      walk_grid_summary(grid, grid.summarize(), backend);
    } else {
      walk_grid(grid, backend);  // 1-level: forward the union, full detail
    }
  }
}

}  // namespace ganglia::gmetad::render
