// XML backend: renders traversal events as the Ganglia XML dialect.
//
// Byte-compatible with the old per-format walker in the query engine: the
// document wrapper reproduces the declaration + GANGLIA_XML + self-GRID
// shape, and element bodies go through the shared writers in xml/ganglia.
#pragma once

#include <string>

#include "gmetad/render/backend.hpp"
#include "xml/writer.hpp"

namespace ganglia::gmetad::render {

class XmlBackend final : public Backend {
 public:
  /// Appends to `out`.  Compact output (the wire format); constructing
  /// without document events yields a bare fragment of element markup
  /// suitable for XmlWriter::raw splicing.
  explicit XmlBackend(std::string& out) : w_(out) {}

  void begin_document(const DocumentInfo& info) override;
  void end_document() override;

  void begin_cluster(const Cluster& cluster) override;
  void end_cluster(const Cluster& cluster) override;
  void begin_grid(const Grid& grid) override;
  void end_grid(const Grid& grid) override;
  void begin_host(const Host& host) override;
  void end_host(const Host& host) override;
  void metric(const Host& host, const Metric& metric) override;
  void summary(const SummaryInfo& summary) override;
  void total(const SummaryInfo& total) override;

  void splice_clusters(std::string_view bytes) override { w_.raw(bytes); }
  void splice_grids(std::string_view bytes) override { w_.raw(bytes); }

 private:
  xml::XmlWriter w_;
};

}  // namespace ganglia::gmetad::render
