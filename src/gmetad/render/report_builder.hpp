// Render backend that materialises the walked document as a typed Report.
//
// The federation publisher needs the *model* of the dump-port document —
// the node's own grid wrapping every source, summaries reduced per the
// node's mode — so it can diff consecutive documents into delta rows.
// Driving this backend through the same traversal that renders the XML
// dump guarantees the published model and the XML fallback describe the
// identical tree: the full-resync path is write_report() of this report.
#pragma once

#include <vector>

#include "gmetad/render/backend.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::gmetad::render {

class ReportBuilder final : public Backend {
 public:
  void begin_document(const DocumentInfo& info) override;
  void end_document() override;

  void begin_cluster(const Cluster& cluster) override;
  void end_cluster(const Cluster& cluster) override;
  void begin_grid(const Grid& grid) override;
  void end_grid(const Grid& grid) override;
  void begin_host(const Host& host) override;
  void end_host(const Host& host) override;
  void metric(const Host& host, const Metric& m) override;
  void summary(const SummaryInfo& s) override;

  /// The finished document (valid after end_document).
  Report take() { return std::move(report_); }

 private:
  Report report_;
  // Open ancestor chain.  Pointers are stable: while a grid is open, every
  // append goes to *its* children, never to the vector that holds it.
  std::vector<Grid*> stack_;
  Cluster* cluster_ = nullptr;
  Host host_;
};

}  // namespace ganglia::gmetad::render
