// JSON backend: renders traversal events as the /api/v1 document.
//
// JSON is the format that forced the traversal's two-pass shape: a grid
// object holds all its clusters in one array and all its child grids in
// another, so cluster items must arrive before grid items at every level.
// The backend tracks a small phase machine per open grid-like container
// (attrs written → clusters array open → grids array open → closed) and
// emits the array punctuation exactly once, whether items arrive as walk
// events or as spliced fragment bytes.
//
// Document shape (matching what the gateway historically served, which was
// the query XML re-parsed and re-rendered):
//
//   {"version":V,"source":"gmetad","clusters":[],
//    "grids":[{"name":G,"authority":A,"localtime":T,
//              "clusters":[...],"grids":[...],("total":{...})}]}
#pragma once

#include <string>
#include <vector>

#include "gmetad/render/backend.hpp"
#include "xml/json.hpp"

namespace ganglia::gmetad::render {

class JsonBackend final : public Backend {
 public:
  /// Appends to `out`.  With fragment=true there is no document: top-level
  /// items render as comma-joined array elements (behind an artificial '['
  /// so the writer's separator logic applies); call finish_fragment() when
  /// done to strip it, leaving bytes ready for a splice.
  explicit JsonBackend(std::string& out, bool fragment = false);

  void finish_fragment();

  void begin_document(const DocumentInfo& info) override;
  void end_document() override;

  void begin_cluster(const Cluster& cluster) override;
  void end_cluster(const Cluster& cluster) override;
  void begin_grid(const Grid& grid) override;
  void end_grid(const Grid& grid) override;
  void begin_host(const Host& host) override;
  void end_host(const Host& host) override;
  void metric(const Host& host, const Metric& metric) override;
  void summary(const SummaryInfo& summary) override;
  void total(const SummaryInfo& total) override;

  void splice_clusters(std::string_view bytes) override;
  void splice_grids(std::string_view bytes) override;

 private:
  /// Lifecycle of one open grid-like container's child arrays.
  enum class Phase { attrs, clusters, grids, closed };

  void ensure_clusters();
  void ensure_grids();
  /// Drive the top frame to `closed`, emitting any arrays not yet written
  /// (a non-summary grid always carries both, possibly empty).
  void close_phases();
  void pop_grid_frame();
  void write_summary_object(const SummaryInfo& summary);

  std::string& out_;
  xml::JsonWriter w_;
  std::vector<Phase> grids_;  ///< open grid-like containers, document first
  bool in_cluster_ = false;
  bool cluster_hosts_open_ = false;
  bool cluster_summary_done_ = false;
  bool in_host_ = false;
  bool fragment_ = false;
};

}  // namespace ganglia::gmetad::render
