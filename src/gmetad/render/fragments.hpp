// Publish-time serialized snapshot fragments.
//
// The paper's freshness-for-latency trade says a query serves the latest
// fully-parsed snapshot; this module extends the trade to *serialization*:
// each immutable SourceSnapshot materialises its serialized subtree bytes
// once — ideally in the poll pool right after publish (prime_fragments),
// lazily on the first query otherwise — and full-tree responses are then
// composed by splicing pre-escaped fragment bytes instead of re-walking
// and re-escaping every host on every request.
//
// Fragments come in two sections per format, matching the document walk's
// two passes: the source's cluster items and its grid items.  Grid items
// depend on the node's mode (N-level reports child grids as summaries),
// so the grid section keys on (format, mode).  Builders run through the
// same traversal and backends as the walk path, which is what makes splice
// output byte-identical to walk output.
#pragma once

#include <string>

#include "gmetad/config.hpp"
#include "gmetad/render/backend.hpp"
#include "gmetad/store.hpp"

namespace ganglia::gmetad::render {

/// Cached cluster-section bytes for a source (built on first use).
const std::string& cluster_fragment(const SourceSnapshot& snapshot,
                                    Format format);

/// Cached grid-section bytes for a source under the given mode.
const std::string& grid_fragment(const SourceSnapshot& snapshot, Format format,
                                 Mode mode);

/// Build every fragment the serving path can need (both formats, the given
/// mode) so queries never pay the serialization cost.  Called from the poll
/// pool right after a snapshot is published; idempotent and thread-safe.
void prime_fragments(const SourceSnapshot& snapshot, Mode mode);

}  // namespace ganglia::gmetad::render
