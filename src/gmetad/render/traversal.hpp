// The single tree traversal behind every output format.
//
// These walks visit the monitoring tree exactly once and emit structural
// events into a Backend; the XML query engine, the JSON API, and the HTML
// presenter all drive the same functions.  The walk decides *what* is
// visited (full detail vs summary form, mode-dependent grid reduction —
// the paper's 1-level/N-level split); the backend decides only how each
// event serialises.
#pragma once

#include "gmetad/config.hpp"
#include "gmetad/render/backend.hpp"
#include "gmetad/store.hpp"

namespace ganglia::gmetad::render {

/// begin_host + one metric event per metric + end_host.
void walk_host_subtree(const Host& host, Backend& backend);

/// A host wrapped in its cluster's element (path-query host responses).
void walk_host_in_cluster(const Cluster& cluster, const Host& host,
                          Backend& backend);

/// Full-detail cluster: hosts at full resolution, or the stored summary
/// when the cluster arrived in summary form.
void walk_cluster(const Cluster& cluster, Backend& backend);

/// Cluster in summary form with a caller-supplied reduction (the engine
/// passes the snapshot's precomputed O(m) summary, never an O(H) recount).
void walk_cluster_summary(const Cluster& cluster, const SummaryInfo& summary,
                          Backend& backend);

/// Full-detail grid subtree, recursive (summary-form children collapse to
/// their stored reduction, as on the wire).
void walk_grid(const Grid& grid, Backend& backend);

/// Grid in summary form with a caller-supplied reduction.
void walk_grid_summary(const Grid& grid, const SummaryInfo& summary,
                       Backend& backend);

/// All cluster items of one source, as the document's clusters pass emits
/// them.  summary_only renders each as a summary wrapper (the meta view).
void walk_source_clusters(const SourceSnapshot& snapshot, bool summary_only,
                          Backend& backend);

/// All grid items of one source.  The node's mode applies the paper's
/// hierarchy rule: an N-level node reports child grids in summary form
/// only; a 1-level node forwards full detail when it has it.
void walk_source_grids(const SourceSnapshot& snapshot, Mode mode,
                       bool summary_only, Backend& backend);

}  // namespace ganglia::gmetad::render
