#include "gmetad/render/deps.hpp"

#include "gmetad/store.hpp"

namespace ganglia::gmetad::render {

bool Deps::current(const Store& store) const {
  if (structure && store.structure_version() != structure_version) {
    return false;
  }
  for (const SourceDep& dep : sources) {
    if (store.source_version(dep.name) != dep.version) return false;
  }
  return true;
}

std::uint64_t Deps::fingerprint() const noexcept {
  // FNV-1a over the version tuple; names are included so two dependency
  // sets with coincidentally equal version lists still differ.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix_u64 = [&mix_byte](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (i * 8)));
  };
  mix_byte(structure ? 1 : 0);
  if (structure) mix_u64(structure_version);
  for (const SourceDep& dep : sources) {
    for (char c : dep.name) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0);  // name terminator: {"ab",1},{"c"} != {"a",1},{"bc"}
    mix_u64(dep.version);
  }
  return h;
}

}  // namespace ganglia::gmetad::render
