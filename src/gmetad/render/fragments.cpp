#include "gmetad/render/fragments.hpp"

#include "gmetad/render/json_backend.hpp"
#include "gmetad/render/traversal.hpp"
#include "gmetad/render/xml_backend.hpp"

namespace ganglia::gmetad::render {

namespace {

// Slot layout inside SourceSnapshot's fragment array.  Cluster sections are
// mode-independent (clusters always render at full detail on this path);
// grid sections are built per mode.
enum Slot : std::size_t {
  kXmlClusters = 0,
  kJsonClusters = 1,
  kXmlGridsOneLevel = 2,
  kXmlGridsNLevel = 3,
  kJsonGridsOneLevel = 4,
  kJsonGridsNLevel = 5,
};
static_assert(kJsonGridsNLevel < SourceSnapshot::kFragmentSlots);

std::size_t grid_slot(Format format, Mode mode) {
  if (format == Format::xml) {
    return mode == Mode::one_level ? kXmlGridsOneLevel : kXmlGridsNLevel;
  }
  return mode == Mode::one_level ? kJsonGridsOneLevel : kJsonGridsNLevel;
}

std::string build_clusters(const SourceSnapshot& snapshot, Format format) {
  std::string out;
  if (format == Format::xml) {
    XmlBackend backend(out);
    walk_source_clusters(snapshot, /*summary_only=*/false, backend);
  } else {
    JsonBackend backend(out, /*fragment=*/true);
    walk_source_clusters(snapshot, /*summary_only=*/false, backend);
    backend.finish_fragment();
  }
  return out;
}

std::string build_grids(const SourceSnapshot& snapshot, Format format,
                        Mode mode) {
  std::string out;
  if (format == Format::xml) {
    XmlBackend backend(out);
    walk_source_grids(snapshot, mode, /*summary_only=*/false, backend);
  } else {
    JsonBackend backend(out, /*fragment=*/true);
    walk_source_grids(snapshot, mode, /*summary_only=*/false, backend);
    backend.finish_fragment();
  }
  return out;
}

}  // namespace

const std::string& cluster_fragment(const SourceSnapshot& snapshot,
                                    Format format) {
  const std::size_t slot =
      format == Format::xml ? kXmlClusters : kJsonClusters;
  return snapshot.fragment(
      slot, [&snapshot, format] { return build_clusters(snapshot, format); });
}

const std::string& grid_fragment(const SourceSnapshot& snapshot, Format format,
                                 Mode mode) {
  return snapshot.fragment(grid_slot(format, mode), [&snapshot, format, mode] {
    return build_grids(snapshot, format, mode);
  });
}

void prime_fragments(const SourceSnapshot& snapshot, Mode mode) {
  cluster_fragment(snapshot, Format::xml);
  cluster_fragment(snapshot, Format::json);
  grid_fragment(snapshot, Format::xml, mode);
  grid_fragment(snapshot, Format::json, mode);
}

}  // namespace ganglia::gmetad::render
