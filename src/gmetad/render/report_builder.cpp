#include "gmetad/render/report_builder.hpp"

#include <utility>

namespace ganglia::gmetad::render {

void ReportBuilder::begin_document(const DocumentInfo& info) {
  report_ = Report{};
  report_.version.assign(info.version);
  report_.source.assign(info.source);
  stack_.clear();
  cluster_ = nullptr;
  // The dump document wraps every source in the node's own grid, exactly
  // like XmlBackend's begin_document.
  Grid self;
  self.name.assign(info.grid_name);
  self.authority.assign(info.authority);
  self.localtime = info.localtime;
  report_.grids.push_back(std::move(self));
  stack_.push_back(&report_.grids.back());
}

void ReportBuilder::end_document() {
  stack_.clear();
  cluster_ = nullptr;
}

void ReportBuilder::begin_cluster(const Cluster& cluster) {
  Cluster c;
  c.name = cluster.name;
  c.owner = cluster.owner;
  c.latlong = cluster.latlong;
  c.url = cluster.url;
  c.localtime = cluster.localtime;
  stack_.back()->clusters.push_back(std::move(c));
  cluster_ = &stack_.back()->clusters.back();
}

void ReportBuilder::end_cluster(const Cluster&) { cluster_ = nullptr; }

void ReportBuilder::begin_grid(const Grid& grid) {
  Grid g;
  g.name = grid.name;
  g.authority = grid.authority;
  g.localtime = grid.localtime;
  stack_.back()->grids.push_back(std::move(g));
  stack_.push_back(&stack_.back()->grids.back());
}

void ReportBuilder::end_grid(const Grid&) { stack_.pop_back(); }

void ReportBuilder::begin_host(const Host& host) {
  host_ = Host{};
  host_.name = host.name;
  host_.ip = host.ip;
  host_.reported = host.reported;
  host_.tn = host.tn;
  host_.tmax = host.tmax;
  host_.dmax = host.dmax;
  host_.location = host.location;
  host_.gmond_started = host.gmond_started;
}

void ReportBuilder::end_host(const Host&) {
  if (cluster_ != nullptr) {
    cluster_->hosts.emplace(host_.name, std::move(host_));
  }
  host_ = Host{};
}

void ReportBuilder::metric(const Host&, const Metric& m) {
  host_.metrics.push_back(m);
}

void ReportBuilder::summary(const SummaryInfo& s) {
  if (cluster_ != nullptr) {
    cluster_->summary = s;
  } else if (!stack_.empty()) {
    stack_.back()->summary = s;
  }
}

}  // namespace ganglia::gmetad::render
