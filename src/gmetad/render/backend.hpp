// Format backends for the unified render pipeline.
//
// The serving path used to walk the monitoring tree three times — once per
// output format (XML in the query engine, JSON in the HTTP gateway, HTML in
// the presenter), each with its own traversal logic and its own bugs.  The
// render pipeline inverts that: one traversal (traversal.hpp, driven by the
// query engine) emits a stream of structural events, and a Backend turns
// those events into bytes.  R-GMA's mediated-view argument applies: one
// producer-side view, many consumer formats.
//
// Events mirror the Ganglia tree.  A document walk looks like:
//
//   begin_document
//     begin_source … cluster items … end_source      (clusters pass)
//     begin_source … grid items    … end_source      (grids pass)
//     [total]                                        (meta view only)
//   end_document
//
// The two-pass shape exists for JSON, whose documents hold all clusters in
// one array and all grids in another; XML interleaves freely and simply
// ignores the pass boundary.  begin_source/end_source produce no output in
// XML/JSON — they are grouping markers for the HTML meta view and the
// splice points for publish-time fragments.
#pragma once

#include <cstdint>
#include <string_view>

#include "xml/ganglia.hpp"

namespace ganglia::gmetad::render {

/// Serialization formats with publish-time fragment support.
enum class Format { xml, json };

/// Identity stamped on a rendered document (the answering gmetad).
struct DocumentInfo {
  std::string_view version;
  std::string_view source;     ///< SOURCE attribute ("gmetad")
  std::string_view grid_name;  ///< the node's own grid
  std::string_view authority;
  std::int64_t localtime = 0;
};

/// One data source as the document walk enters it.
struct SourceInfo {
  std::string_view name;
  bool is_grid = false;
  bool reachable = true;
};

/// Event sink for one tree traversal.  All handlers default to no-ops so a
/// backend implements only the events its format renders (the HTML meta
/// backend, for instance, cares about sources and summaries but not
/// individual metrics).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual void begin_document(const DocumentInfo&) {}
  virtual void end_document() {}

  virtual void begin_source(const SourceInfo&) {}
  virtual void end_source() {}

  virtual void begin_cluster(const Cluster&) {}
  virtual void end_cluster(const Cluster&) {}
  virtual void begin_grid(const Grid&) {}
  virtual void end_grid(const Grid&) {}
  virtual void begin_host(const Host&) {}
  virtual void end_host(const Host&) {}
  virtual void metric(const Host&, const Metric&) {}

  /// Summary reduction of the innermost open container.
  virtual void summary(const SummaryInfo&) {}

  /// Whole-tree total, emitted at document level after all sources (the
  /// meta view's grand TOTAL row).
  virtual void total(const SummaryInfo&) {}

  /// Splice pre-serialized fragment bytes into the current pass.  The bytes
  /// were produced by this same backend type walking the source at publish
  /// time, so splice output is byte-identical to the walk it replaces.
  /// Backends without a serialized form (HTML views) ignore splices; the
  /// engine never offers them fragments.
  virtual void splice_clusters(std::string_view) {}
  virtual void splice_grids(std::string_view) {}
};

}  // namespace ganglia::gmetad::render
