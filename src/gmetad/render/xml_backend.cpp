#include "gmetad/render/xml_backend.hpp"

namespace ganglia::gmetad::render {

void XmlBackend::begin_document(const DocumentInfo& info) {
  w_.declaration();
  w_.open("GANGLIA_XML");
  w_.attr("VERSION", info.version);
  w_.attr("SOURCE", info.source);
  w_.open("GRID");
  w_.attr("NAME", info.grid_name);
  w_.attr("AUTHORITY", info.authority);
  w_.attr("LOCALTIME", info.localtime);
}

void XmlBackend::end_document() {
  w_.close();  // GRID
  w_.close();  // GANGLIA_XML
}

void XmlBackend::begin_cluster(const Cluster& cluster) {
  w_.open("CLUSTER");
  write_cluster_attrs(w_, cluster);
}

void XmlBackend::end_cluster(const Cluster&) { w_.close(); }

void XmlBackend::begin_grid(const Grid& grid) {
  w_.open("GRID");
  write_grid_attrs(w_, grid);
}

void XmlBackend::end_grid(const Grid&) { w_.close(); }

void XmlBackend::begin_host(const Host& host) {
  w_.open("HOST");
  write_host_attrs(w_, host);
}

void XmlBackend::end_host(const Host&) { w_.close(); }

void XmlBackend::metric(const Host&, const Metric& metric) {
  write_metric(w_, metric);
}

void XmlBackend::summary(const SummaryInfo& summary) {
  write_summary_info(w_, summary);
}

void XmlBackend::total(const SummaryInfo& total) {
  write_summary_info(w_, total);
}

}  // namespace ganglia::gmetad::render
