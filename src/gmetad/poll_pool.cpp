#include "gmetad/poll_pool.hpp"

namespace ganglia::gmetad {

PollPool::PollPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PollPool::~PollPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void PollPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void PollPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ganglia::gmetad
