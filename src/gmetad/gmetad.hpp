// Gmetad: the wide-area monitor node (the paper's contribution).
//
// One Gmetad instance is one hexagon in the paper's figure-2 tree.  It
// polls its data sources (gmon clusters and child gmetads) on the
// summarisation time scale, parses their XML off to the side, publishes
// immutable snapshots into the hash-table store, archives metrics into
// RRDs, and serves two endpoints: a dump port that reports the whole tree
// and an interactive port answering path queries (and JOIN messages).
//
// The instance can be driven two ways:
//  * deterministically — poll_once() per simulated 15 s round; tests and
//    the paper-figure benches use this with the in-memory transport;
//  * as a daemon — start()/stop() spin poller and server threads over any
//    transport (the examples run real TCP on loopback).
//
// Polling is a concurrent pipeline: a fixed PollPool (poll_threads wide)
// overlaps the blocking wide-area fetches, so a round's wall clock tracks
// the slowest source instead of the sum of all RTTs.  poll_once() fans a
// whole round out and waits on a latch; the daemon runs a due-time
// scheduler that dispatches each source when its own poll_interval_s
// elapses (never two in-flight polls of the same source).  Shared state is
// safe under that concurrency: the store publishes by atomic swap, the
// archiver is hash-sharded, the join registry locks internally, and the
// per-source health fields are atomics.
//
// Every unit of processing (parsing, summarising, archiving, and serving
// queries — including dump requests made *by a parent*) is charged to this
// node's CpuMeter, reproducing the per-gmeta %CPU measurements of the
// paper's figures 5 and 6.  Fetch wait time is not charged: it is network
// latency, and over the in-memory fabric the child being polled charges
// its own meter for producing the dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/clock.hpp"
#include "common/cpu_timer.hpp"
#include "fed/publisher.hpp"
#include "gmetad/archiver.hpp"
#include "gmetad/config.hpp"
#include "gmetad/data_source.hpp"
#include "gmetad/join.hpp"
#include "gmetad/poll_pool.hpp"
#include "gmetad/query.hpp"
#include "gmetad/store.hpp"
#include "gossip/agent.hpp"
#include "gossip/failover.hpp"
#include "net/transport.hpp"

namespace ganglia::gmetad {

class Gmetad {
 public:
  Gmetad(GmetadConfig config, net::Transport& transport, Clock& clock);
  ~Gmetad();

  Gmetad(const Gmetad&) = delete;
  Gmetad& operator=(const Gmetad&) = delete;

  // -- deterministic driving ----------------------------------------------

  struct PollResult {
    std::string source;
    bool ok = false;
    std::size_t bytes = 0;
    std::string error;
  };

  /// Poll every data source once (fetch, parse, summarise, archive),
  /// overlapping sources across the poll pool.  Blocks until the whole
  /// round has completed; results are in source order regardless of which
  /// worker finished first.  Dynamic children that stopped joining are
  /// pruned first.
  std::vector<PollResult> poll_once();

  /// Width of the poll pipeline (resolved from config.poll_threads).
  std::size_t poll_threads() const noexcept { return pool_ ? pool_->size() : 1; }

  // -- reporting / queries --------------------------------------------------

  /// The dump-port document: whole tree per this node's mode.
  std::string dump_xml();

  /// Answer one interactive-port line: a path query, a JOIN message, or a
  /// HISTORY request ("HISTORY <path> <start> <end>") that serves an RRD
  /// series as XML — the data behind the frontend's graphs.
  Result<std::string> handle_interactive(std::string_view line);

  /// Serve archived history for "/source/cluster/host/metric" (host series)
  /// or "/scope/metric" (summary series; scope = source or source/cluster)
  /// over [start, end) as a <SERIES> document.
  Result<std::string> history(std::string_view path, std::int64_t start,
                              std::int64_t end);

  /// Path query only (no JOIN handling).
  Result<std::string> query(std::string_view line);

  /// Path query rendered in the requested format, reporting the store
  /// versions it read (the HTTP gateway's cache key material).
  Result<RenderedQuery> query_rendered(std::string_view line,
                                       render::Format format);

  /// Drive the meta view ("/?filter=summary") through any render backend —
  /// the presenter's HTML route.  Returns the dependency set.
  render::Deps render_meta(render::Backend& backend);

  /// Service adapters for in-memory transports.  Work done inside them is
  /// charged to *this* node's CPU meter even when a parent's poll thread
  /// runs them.
  net::ServiceFn dump_service();
  net::ServiceFn interactive_service();

  // -- delta federation (serving side) --------------------------------------

  /// Service adapter answering framed delta-federation polls against this
  /// node's current document (the dump-port tree in typed form).  Each
  /// request is one complete framed poll/ping; each response is a complete
  /// framed byte string — the same publisher also backs the persistent TCP
  /// listener bound at config.federation_bind.
  net::ServiceFn federation_service();

  /// Bound delta listener address (config.federation_bind until start()).
  std::string federation_address() const;

  /// Serving-side delta counters for the stats route.
  fed::PublisherStats federation_stats() const { return publisher_->stats(); }

  // -- join protocol (child side) -----------------------------------------

  /// Send one JOIN message to a parent's interactive address.
  Status send_join(const std::string& parent_interactive_address);

  // -- gossip membership ----------------------------------------------------

  /// Enabled when config.gossip_bind is set: this node participates in the
  /// federation's gossip membership protocol and (per gossip_aggregate /
  /// standby_for) derives data sources from it instead of static
  /// data_source lines.
  bool gossip_enabled() const noexcept { return gossip_ != nullptr; }
  gossip::Agent* membership() noexcept { return gossip_.get(); }
  const gossip::Agent* membership() const noexcept { return gossip_.get(); }
  const gossip::FailoverController* failover() const noexcept {
    return failover_.get();
  }

  /// One gossip round followed by membership→source reconciliation.  The
  /// daemon scheduler calls this every gossip_interval_s; deterministic
  /// tests and benches drive it directly.
  void gossip_tick();

  // -- daemon mode ----------------------------------------------------------

  /// Start poller + server threads.  Binds the configured addresses on the
  /// injected transport.
  Status start();
  void stop();
  bool running() const noexcept { return running_.load(); }

  /// Actual bound addresses (useful with ephemeral ports).
  std::string xml_address() const;
  std::string interactive_address() const;

  // -- introspection ----------------------------------------------------------

  const GmetadConfig& config() const noexcept { return config_; }
  Store& store() noexcept { return store_; }
  const Store& store() const noexcept { return store_; }
  Archiver& archiver() noexcept { return archiver_; }
  CpuMeter& cpu_meter() noexcept { return cpu_meter_; }
  const JoinRegistry& joins() const noexcept { return joins_; }

  /// Failover/health state per configured source.
  std::vector<const DataSource*> sources() const;

  /// Total bytes downloaded from sources since construction.
  std::uint64_t bytes_polled() const noexcept {
    return bytes_polled_.load(std::memory_order_relaxed);
  }

  /// Hook invoked at the end of every poll round with the round's
  /// timestamp — the attachment point for the alarm engine (src/alarm
  /// layers on top of gmetad, so the dependency points this way).
  void set_post_poll_hook(std::function<void(std::int64_t now)> hook) {
    post_poll_hook_ = std::move(hook);
  }

 private:
  QueryContext context();
  Result<std::string> handle_history_line(std::string_view line);
  void archive_snapshot(const SourceSnapshot& snapshot);
  void handle_connection(net::Stream& stream, bool interactive);
  bool peer_trusted(const std::string& peer) const;
  Result<std::string> handle_join_line(std::string_view line);

  /// One source's fetch→parse→summarise→archive→publish chain.  Runs on a
  /// pool worker; never called twice concurrently for the same source.
  PollResult poll_source(DataSource& source, std::int64_t now);
  /// Apply per-source knobs derived from the global config (federation
  /// client settings) before a DataSourceConfig becomes a DataSource.
  DataSourceConfig finish_source_config(DataSourceConfig ds) const;
  /// The document the delta publisher diffs: the dump-port tree in typed
  /// form, cached until a store version (or the clock second) moves.
  fed::Doc current_doc();
  /// Serve framed polls over one accepted federation connection until the
  /// peer goes away.
  void handle_federation_connection(net::Stream& stream);
  /// gossip::Agent::Carrier: route an outbound membership digest over the
  /// live federation poll session to that peer, when one exists.
  std::optional<Result<std::string>> piggyback_digest(
      const std::string& peer_address, const std::string& payload);
  /// Drop dynamic children whose joins lapsed (sources, schedule, store).
  void prune_expired_children(std::int64_t now);
  /// Reconcile membership-derived data sources (own children + any primary
  /// we currently cover as a standby) against the live member table.
  void sync_membership_sources();
  /// Round epilogue: root summary archive + post-poll hook.
  void finish_round(std::int64_t now);
  /// Daemon due-time scheduler: dispatch every due, not-in-flight source.
  void tick_scheduler();
  std::vector<std::shared_ptr<DataSource>> snapshot_sources() const;

  GmetadConfig config_;
  net::Transport& transport_;
  Clock& clock_;
  Store store_;
  Archiver archiver_;
  QueryEngine engine_;
  JoinRegistry joins_;
  CpuMeter cpu_meter_;
  std::atomic<std::uint64_t> bytes_polled_{0};
  std::function<void(std::int64_t)> post_poll_hook_;

  mutable std::mutex sources_mutex_;
  /// Workers hold shared_ptr copies, so a concurrent prune can drop a
  /// source from this vector without yanking it out from under a poll.
  std::vector<std::shared_ptr<DataSource>> sources_;

  /// Daemon due-time schedule, one entry per live source.
  struct SourceSchedule {
    std::int64_t next_due_s = 0;  ///< 0 = due immediately
    bool in_flight = false;
  };
  std::mutex schedule_mutex_;
  std::map<std::string, SourceSchedule> schedule_;
  /// Set by every completed poll; the next tick folds the root summary.
  std::atomic<bool> summary_dirty_{false};

  // Gossip membership.  failover_ is declared before gossip_ so the agent
  // (whose event handler feeds the controller) is destroyed first.
  std::unique_ptr<gossip::FailoverController> failover_;
  std::unique_ptr<gossip::Agent> gossip_;
  std::mutex membership_mutex_;
  /// Sources we adopted from the member table: name → advertised XML addr.
  std::map<std::string, std::string> membership_sources_;
  std::int64_t next_gossip_due_s_ = 0;  ///< scheduler thread only

  // Delta federation serving.  publisher_ always exists (cheap when idle)
  // so the in-memory service adapter and the stats route work without a
  // bound listener.  The document cache makes the provider idempotent per
  // (store versions, clock second) — repeated polls within one second and
  // polls from several parents share one built report.
  std::unique_ptr<fed::Publisher> publisher_;
  std::mutex doc_mutex_;
  fed::Doc doc_cache_;
  std::int64_t next_heartbeat_due_s_ = 0;  ///< scheduler thread only

  // Daemon mode.
  std::atomic<bool> running_{false};
  std::unique_ptr<net::Listener> xml_listener_;
  std::unique_ptr<net::Listener> interactive_listener_;
  std::unique_ptr<net::Listener> federation_listener_;
  /// Live federation connections: persistent, so each gets its own thread;
  /// stop() closes the streams to unblock them, then joins.
  struct FedConnection {
    std::shared_ptr<net::Stream> stream;
    std::shared_ptr<std::atomic<bool>> done;
    std::jthread thread;
  };
  std::mutex fed_conns_mutex_;
  std::vector<FedConnection> fed_conns_;
  std::vector<std::jthread> threads_;

  /// Declared last: destroyed first, joining any in-flight poll tasks
  /// before the members they reference go away.
  std::unique_ptr<PollPool> pool_;
};

}  // namespace ganglia::gmetad
