#include "gmetad/testbed.hpp"

#include <cassert>
#include <stdexcept>

namespace ganglia::gmetad {

TestbedSpec fig2_spec(std::size_t hosts_per_cluster, Mode mode) {
  TestbedSpec spec;
  spec.hosts_per_cluster = hosts_per_cluster;
  spec.mode = mode;
  spec.nodes = {
      {"root", {"ucsd", "sdsc"}, {"root-alpha", "root-beta"}},
      {"ucsd", {"physics", "math"}, {"ucsd-alpha", "ucsd-beta"}},
      {"sdsc", {"attic"}, {"meteor", "nashi"}},
      {"physics", {}, {"physics-alpha", "physics-beta"}},
      {"math", {}, {"math-alpha", "math-beta"}},
      {"attic", {}, {"attic-alpha", "attic-beta"}},
  };
  return spec;
}

Testbed::Testbed(TestbedSpec spec) : spec_(std::move(spec)) {
  // Clusters first: every leaf source is a pseudo-gmond service.
  std::uint64_t cluster_index = 0;
  for (const TestbedNodeSpec& node : spec_.nodes) {
    for (const std::string& cluster_name : node.cluster_names) {
      gmon::PseudoGmondConfig config;
      config.cluster_name = cluster_name;
      config.host_count = spec_.hosts_per_cluster;
      config.seed = spec_.seed + (++cluster_index) * 7919;
      config.soft_state_timers = spec_.soft_state;
      auto emulator = std::make_unique<gmon::PseudoGmond>(config, clock_);
      transport_.register_service(gmond_address(cluster_name),
                                  emulator->service());
      if (spec_.federation) {
        transport_.register_service(gmond_federation_address(cluster_name),
                                    emulator->federation_service());
      }
      clusters_.emplace(cluster_name, std::move(emulator));
    }
  }

  // Gmetads next.  A node's sources are its local clusters plus the dump
  // ports of its children.
  for (const TestbedNodeSpec& node : spec_.nodes) {
    GmetadConfig config;
    config.grid_name = node.name;
    config.authority = "gmetad://" + node.name + ".gmeta:8651/";
    config.mode = spec_.mode;
    config.archive_enabled = spec_.archive_enabled;
    config.archive_step_s = spec_.poll_interval_s;
    for (const std::string& cluster_name : node.cluster_names) {
      DataSourceConfig ds;
      ds.name = cluster_name;
      ds.addresses = {gmond_address(cluster_name)};
      ds.poll_interval_s = spec_.poll_interval_s;
      if (spec_.federation) {
        ds.federation_address = gmond_federation_address(cluster_name);
      }
      config.sources.push_back(std::move(ds));
    }
    for (const std::string& child : node.children) {
      DataSourceConfig ds;
      ds.name = child;
      ds.addresses = {dump_address(child)};
      ds.poll_interval_s = spec_.poll_interval_s;
      if (spec_.federation) {
        ds.federation_address = federation_address(child);
      }
      config.sources.push_back(std::move(ds));
    }
    auto gmetad = std::make_unique<Gmetad>(std::move(config), transport_, clock_);
    transport_.register_service(dump_address(node.name),
                                gmetad->dump_service());
    transport_.register_service(interactive_address(node.name),
                                gmetad->interactive_service());
    if (spec_.federation) {
      transport_.register_service(federation_address(node.name),
                                  gmetad->federation_service());
    }
    gmetads_.emplace(node.name, std::move(gmetad));
  }

  // Children-first polling order (post-order from the root).
  std::vector<std::string> stack;
  const auto visit = [&](const auto& self, const std::string& name) -> void {
    for (const TestbedNodeSpec& node : spec_.nodes) {
      if (node.name != name) continue;
      for (const std::string& child : node.children) self(self, child);
      poll_order_.push_back(name);
      return;
    }
    throw std::invalid_argument("testbed child '" + name + "' is not a node");
  };
  if (!spec_.nodes.empty()) visit(visit, spec_.nodes.front().name);
  window_start_us_ = clock_.now_us();
}

void Testbed::run_round() {
  clock_.advance_seconds(static_cast<double>(spec_.poll_interval_s));
  for (const std::string& name : poll_order_) {
    gmetads_.at(name)->poll_once();
  }
  ++rounds_;
}

Gmetad& Testbed::node(const std::string& name) {
  const auto it = gmetads_.find(name);
  assert(it != gmetads_.end());
  return *it->second;
}

gmon::PseudoGmond& Testbed::cluster(const std::string& name) {
  const auto it = clusters_.find(name);
  assert(it != clusters_.end());
  return *it->second;
}

double Testbed::cpu_seconds(const std::string& name) {
  return node(name).cpu_meter().total_seconds();
}

double Testbed::cpu_percent(const std::string& name) {
  const TimeUs window = clock_.now_us() - window_start_us_;
  if (window <= 0) return 0.0;
  return 100.0 * cpu_seconds(name) / us_to_seconds(window);
}

void Testbed::resize_clusters(std::size_t hosts_per_cluster) {
  spec_.hosts_per_cluster = hosts_per_cluster;
  for (auto& [name, cluster] : clusters_) {
    (void)name;
    cluster->resize(hosts_per_cluster);
  }
}

void Testbed::begin_window() {
  for (auto& [name, gmetad] : gmetads_) {
    (void)name;
    gmetad->cpu_meter().reset();
  }
  window_start_us_ = clock_.now_us();
}

}  // namespace ganglia::gmetad
