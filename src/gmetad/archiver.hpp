// Metric archiver: feeds RRDs from snapshots.
//
// "As metric archiving is a processor-intensive task, this redundancy is
// unwanted" (paper §2.1): in 1-level mode every gmetad between a cluster
// and the root keeps identical per-host archives for that cluster — the
// superfluous duplication the paper blames for the aggregate-CPU gap in
// figure 6.  In N-level mode only the authority archives a cluster at host
// granularity; upstream nodes archive summary RRDs (sum+num per metric).
//
// Downtime handling: when a source is unreachable nothing is written, the
// RRD heartbeat lapses, and the archive records *unknown* rows for the
// outage — the "zero record during the downtime, aiding time-of-death
// forensic analysis" of paper §2.1.
//
// Concurrency: the poll pool archives several sources at once.  Databases
// are partitioned into hash shards, each with its own mutex, so workers
// writing different archives proceed in parallel and only true key
// collisions contend.  A single RoundRobinDb is never updated concurrently:
// each archive key belongs to exactly one source, and the scheduler runs at
// most one poll per source at a time.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gmetad/store.hpp"
#include "rrd/rrd.hpp"

namespace ganglia::gmetad {

struct ArchiverOptions {
  std::int64_t step_s = 15;
  /// RRD heartbeat: samples older than this become unknown.
  std::int64_t heartbeat_s = 120;
  /// When non-empty, flush_to_disk()/load_from_disk() persist every
  /// database under this directory (the paper's deployments kept RRD files
  /// on tmpfs; we default to pure in-memory and offer this for restarts).
  std::string persist_dir;
};

class Archiver {
 public:
  explicit Archiver(ArchiverOptions options) : options_(options) {}

  /// Archive one host metric: key "<source>/<cluster>/<host>/<metric>".
  void record_host_metric(const std::string& source,
                          const std::string& cluster, const Host& host,
                          const Metric& metric, std::int64_t now);

  /// Archive a full-detail cluster at host granularity.
  void record_cluster(const std::string& source, const Cluster& cluster,
                      std::int64_t now);

  /// Archive a summary (two data sources per metric: sum and num) under
  /// "<scope>/__summary__/<metric>".
  void record_summary(const std::string& scope, const SummaryInfo& summary,
                      std::int64_t now);

  /// Fetch a host metric's history.
  Result<rrd::Series> fetch_host_metric(const std::string& source,
                                        const std::string& cluster,
                                        const std::string& host,
                                        const std::string& metric,
                                        std::int64_t start,
                                        std::int64_t end) const;

  /// Fetch a summary metric's history; ds 0 = sum, ds 1 = num.
  Result<rrd::Series> fetch_summary_metric(const std::string& scope,
                                           const std::string& metric,
                                           std::int64_t start,
                                           std::int64_t end,
                                           std::size_t ds_index = 0) const;

  // -- persistence ----------------------------------------------------------

  /// Write every database to `persist_dir` (manifest + one image per
  /// archive).  Atomic per file; fails fast on the first I/O error.
  Status flush_to_disk() const;

  /// Load all databases previously flushed to `persist_dir`, replacing any
  /// in-memory state for the same keys.  Missing directory is not an
  /// error (cold start).
  Status load_from_disk();

  // -- load accounting (the quantity the paper's figures track) ------------
  std::uint64_t rrd_updates() const noexcept {
    return updates_.load(std::memory_order_relaxed);
  }
  std::size_t database_count() const;
  std::size_t storage_bytes() const;
  void reset_counters() { updates_.store(0, std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<rrd::RoundRobinDb>> databases;
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;

  /// Find-or-create under the shard mutex (caller must hold it).
  rrd::RoundRobinDb* open(Shard& shard, const std::string& key,
                          std::size_t ds_count, std::int64_t now);

  ArchiverOptions options_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> updates_{0};
};

}  // namespace ganglia::gmetad
