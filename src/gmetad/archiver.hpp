// Metric archiver: feeds RRDs from snapshots.
//
// "As metric archiving is a processor-intensive task, this redundancy is
// unwanted" (paper §2.1): in 1-level mode every gmetad between a cluster
// and the root keeps identical per-host archives for that cluster — the
// superfluous duplication the paper blames for the aggregate-CPU gap in
// figure 6.  In N-level mode only the authority archives a cluster at host
// granularity; upstream nodes archive summary RRDs (sum+num per metric).
//
// Downtime handling: when a source is unreachable nothing is written, the
// RRD heartbeat lapses, and the archive records *unknown* rows for the
// outage — the "zero record during the downtime, aiding time-of-death
// forensic analysis" of paper §2.1.
//
// Hot path: record_cluster() is batched.  A poll's updates are resolved
// against a per-source handle cache (host/metric → archive pointer, valid
// while the owning shard's generation is unchanged) and grouped by shard,
// so each shard mutex is taken once per poll instead of once per metric
// and steady-state updates never touch the key map at all.  Keys are built
// in a reusable buffer and looked up heterogeneously (string_view +
// precomputed hash) — the per-update string/hash/map/mutex round-trip of
// the old per-metric path survives only as record_host_metric(), kept as
// the measured baseline.
//
// Persistence is write-behind, rrdcached-style: every update marks its
// archive dirty; flush_dirty() (and the optional background flusher
// thread) walks one shard at a time, serialises that shard's dirty
// archives under its mutex, and performs all file I/O outside any shard
// lock via tmp-file + atomic rename — a crash mid-flush can truncate only
// a .tmp, never a live image.  The manifest is rewritten only when the key
// set changed.  Restore is tolerant: a corrupt image or a hostile manifest
// entry skips that archive and restores the rest.
//
// Concurrency: the poll pool archives several sources at once.  Databases
// are partitioned into hash shards, each with its own mutex, so workers
// writing different archives proceed in parallel and only true key
// collisions contend.  A single RoundRobinDb is never updated concurrently:
// each archive key belongs to exactly one source, and the scheduler runs at
// most one poll per source at a time (the per-source handle cache relies on
// the same invariant).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gmetad/store.hpp"
#include "rrd/rrd.hpp"

namespace ganglia::gmetad {

struct ArchiverOptions {
  std::int64_t step_s = 15;
  /// RRD heartbeat: samples older than this become unknown.
  std::int64_t heartbeat_s = 120;
  /// When non-empty, flush/load persist every database under this directory
  /// (the paper's deployments kept RRD files on tmpfs; we default to pure
  /// in-memory and offer this for restarts).
  std::string persist_dir;
  /// Write-behind cadence of the background flusher thread (seconds);
  /// 0 = no background flushing, archives are persisted only by explicit
  /// flush calls (the daemon flushes on stop).
  std::int64_t flush_interval_s = 0;
};

class Archiver {
 public:
  explicit Archiver(ArchiverOptions options) : options_(std::move(options)) {}
  ~Archiver() { stop_flusher(); }

  Archiver(const Archiver&) = delete;
  Archiver& operator=(const Archiver&) = delete;

  /// Archive one host metric: key "<source>/<cluster>/<host>/<metric>".
  /// Per-metric compatibility path (one key build + shard lock per call);
  /// record_cluster() is the batched fast path.
  void record_host_metric(const std::string& source,
                          const std::string& cluster, const Host& host,
                          const Metric& metric, std::int64_t now);

  /// Archive a full-detail cluster at host granularity, batched: updates
  /// are grouped by shard (one mutex acquisition per shard per call) and
  /// steady-state updates resolve through the per-source handle cache.
  void record_cluster(const std::string& source, const Cluster& cluster,
                      std::int64_t now);

  /// Archive a summary (two data sources per metric: sum and num) under
  /// "<scope>/__summary__/<metric>".  Batched by shard like record_cluster.
  void record_summary(const std::string& scope, const SummaryInfo& summary,
                      std::int64_t now);

  /// Fetch a host metric's history.
  Result<rrd::Series> fetch_host_metric(const std::string& source,
                                        const std::string& cluster,
                                        const std::string& host,
                                        const std::string& metric,
                                        std::int64_t start,
                                        std::int64_t end) const;

  /// Reduce a host metric's history over [start, end) in place — the
  /// query engine's time-range read path.  Walks the round-robin window of
  /// the finest covering archive under the shard lock and returns only the
  /// running sums; no Series is materialised and no file is touched.
  Result<rrd::WindowAgg> reduce_host_metric(const std::string& source,
                                            const std::string& cluster,
                                            const std::string& host,
                                            const std::string& metric,
                                            std::int64_t start,
                                            std::int64_t end) const;

  /// Fetch a summary metric's history; ds 0 = sum, ds 1 = num.
  Result<rrd::Series> fetch_summary_metric(const std::string& scope,
                                           const std::string& metric,
                                           std::int64_t start,
                                           std::int64_t end,
                                           std::size_t ds_index = 0) const;

  // -- persistence ----------------------------------------------------------

  struct FlushStats {
    std::size_t archives_written = 0;
    bool manifest_rewritten = false;
  };

  /// Write every database to `persist_dir` (manifest + one image per
  /// archive), dirty or not, and clear all dirty bits.  Shards are
  /// serialised one at a time; file I/O happens outside every shard lock,
  /// via tmp-file + atomic rename.
  Status flush_to_disk();

  /// Write-behind flush: persist only archives updated since their last
  /// flush, and rewrite the manifest only when the key set changed.  Same
  /// locking discipline as flush_to_disk().
  Result<FlushStats> flush_dirty();

  /// Load all databases previously flushed to `persist_dir`, replacing any
  /// in-memory state for the same keys.  Missing directory is not an error
  /// (cold start).  Tolerant: leftover .tmp files are swept, and a corrupt
  /// image or an unsafe manifest entry (path separators, bytes encode_key
  /// would have escaped) skips that archive and restores the rest.
  Status load_from_disk();

  /// Spawn the background write-behind flusher (no-op unless persist_dir is
  /// set and flush_interval_s > 0).  Not thread-safe against itself; call
  /// from the same control path as stop_flusher().
  Status start_flusher();

  /// Join the flusher thread.  Idempotent; safe without start_flusher().
  void stop_flusher();

  bool flusher_running() const noexcept { return flusher_.joinable(); }

  // -- load accounting (the quantity the paper's figures track) ------------
  std::uint64_t rrd_updates() const noexcept {
    return updates_.load(std::memory_order_relaxed);
  }
  std::size_t database_count() const;
  std::size_t storage_bytes() const;
  /// Archives updated since their last flush.
  std::size_t dirty_count() const;
  /// Completed flush passes (flush_to_disk + flush_dirty).
  std::uint64_t flush_count() const noexcept {
    return flushes_.load(std::memory_order_relaxed);
  }
  /// Seconds since the last completed flush (monotonic clock); negative
  /// when nothing has been flushed yet.
  double seconds_since_last_flush() const;
  void reset_counters() { updates_.store(0, std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kShards = 16;

  /// One database plus its write-behind state.  Address-stable (the shard
  /// map is node-based), so handle caches may keep Archive pointers while
  /// the shard generation is unchanged.  The db lives by value in the map
  /// node: the update hot path pays one pointer chase (node), not two.
  struct Archive {
    rrd::RoundRobinDb db;
    bool dirty = false;  ///< guarded by the owning shard's mutex
  };

  /// Heterogeneous key lookup: probe with a string_view and a precomputed
  /// hash, no temporary std::string.
  struct KeyRef {
    std::string_view text;
    std::size_t hash = 0;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const KeyRef& k) const noexcept { return k.hash; }
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const noexcept {
      return (*this)(std::string_view(s));
    }
  };
  struct KeyEq {
    using is_transparent = void;
    static std::string_view view(const KeyRef& k) noexcept { return k.text; }
    static std::string_view view(std::string_view s) noexcept { return s; }
    static std::string_view view(const std::string& s) noexcept { return s; }
    template <class A, class B>
    bool operator()(const A& a, const B& b) const noexcept {
      return view(a) == view(b);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Archive, KeyHash, KeyEq> databases;
    /// Bumped whenever an existing entry is replaced or erased; cached
    /// Archive pointers from an older generation must re-resolve.  (Pure
    /// inserts don't move existing nodes and don't bump.)
    std::atomic<std::uint64_t> generation{0};
  };

  /// A resolved archive handle cached across polls.
  struct CachedHandle {
    Archive* archive = nullptr;
    std::uint32_t shard = 0;
    std::uint64_t generation = 0;
  };
  struct PendingUpdate {
    const Host* host;
    const Metric* metric;  ///< touched again only on a handle-cache miss
    CachedHandle* slot;
    double value;  ///< carried inline so the hit path stays in the buckets
  };
  /// Per-host metric slots, index-aligned with Host::metrics order (stable
  /// across polls in practice); a name mismatch falls back to a scan.
  struct HostSlots {
    std::vector<std::pair<std::string, CachedHandle>> slots;
  };
  /// Per-source resolution cache + reusable scratch.  A source is polled by
  /// at most one worker at a time, so no lock guards the contents.
  struct SourceCache {
    std::unordered_map<std::string, HostSlots, KeyHash, KeyEq> hosts;
    std::array<std::vector<PendingUpdate>, kShards> pending;
    std::string key_buf;
  };

  const Shard& shard_for(std::string_view key) const;

  /// Find-or-create under the shard mutex (caller must hold it).
  Archive* open_locked(Shard& shard, std::string_view key, std::size_t hash,
                       std::size_t ds_count, std::int64_t now);

  SourceCache& source_cache(const std::string& source);

  Result<FlushStats> flush_impl(bool everything);

  ArchiverOptions options_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> updates_{0};

  mutable std::mutex caches_mutex_;
  std::map<std::string, std::unique_ptr<SourceCache>> caches_;

  /// Serialises the file phases of flush/load against each other (shard
  /// mutexes still guard the in-memory databases).
  std::mutex flush_mutex_;
  /// Bumped on any archive creation/removal; compared against
  /// manifest_version_ to decide whether the manifest needs rewriting.
  std::atomic<std::uint64_t> key_set_version_{1};
  std::uint64_t manifest_version_ = 0;  ///< guarded by flush_mutex_
  std::atomic<std::int64_t> last_flush_steady_ms_{-1};
  std::atomic<std::uint64_t> flushes_{0};
  std::jthread flusher_;
};

}  // namespace ganglia::gmetad
