#include "gmetad/data_source.hpp"

#include "common/log.hpp"

namespace ganglia::gmetad {

std::string DataSource::session_mode(std::int64_t now_s) const {
  if (config_.federation_address.empty()) return "xml";
  if (delta_retry_after_.load(std::memory_order_relaxed) > now_s) {
    return "backoff";
  }
  return session_live_.load(std::memory_order_relaxed) ? "delta" : "sync";
}

void DataSource::set_federation_address(const std::string& address) {
  std::lock_guard lock(session_mutex_);
  if (config_.federation_address == address) return;
  config_.federation_address = address;
  session_.reset();
  session_live_.store(false, std::memory_order_relaxed);
  delta_retry_after_.store(0, std::memory_order_relaxed);
}

Result<DataSource::Fetched> DataSource::fetch_delta(net::Transport& transport,
                                                    TimeUs timeout,
                                                    std::int64_t now_s,
                                                    CpuMeter* meter) {
  std::lock_guard lock(session_mutex_);
  if (session_ == nullptr ||
      session_->address() != config_.federation_address) {
    fed::SessionOptions opts;
    opts.address = config_.federation_address;
    opts.max_frame = config_.federation_max_frame;
    session_ = std::make_unique<fed::Session>(std::move(opts));
  }
  auto out = session_->poll(transport, timeout, meter);
  if (!out.ok()) {
    session_live_.store(false, std::memory_order_relaxed);
    return out.error();
  }
  session_live_.store(true, std::memory_order_relaxed);
  Fetched f;
  f.report = std::move(out->report);
  f.bytes = out->bytes;
  f.via_delta = out->delta;
  f.resync = out->resync;
  if (out->delta) {
    delta_polls_.fetch_add(1, std::memory_order_relaxed);
    bytes_delta_.fetch_add(out->bytes, std::memory_order_relaxed);
    const std::uint64_t full = last_full_bytes_.load(std::memory_order_relaxed);
    if (full > out->bytes) {
      bytes_saved_.fetch_add(full - out->bytes, std::memory_order_relaxed);
    }
  } else {
    full_polls_.fetch_add(1, std::memory_order_relaxed);
    bytes_full_.fetch_add(out->bytes, std::memory_order_relaxed);
    last_full_bytes_.store(out->bytes, std::memory_order_relaxed);
    if (out->resync) delta_resyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  reachable_.store(true, std::memory_order_relaxed);
  consecutive_failures_.store(0, std::memory_order_relaxed);
  last_success_s_.store(now_s, std::memory_order_relaxed);
  {
    std::lock_guard err_lock(last_error_mutex_);
    last_error_.clear();
  }
  return f;
}

void DataSource::heartbeat(net::Transport& transport, TimeUs timeout) {
  if (config_.federation_address.empty()) return;
  if (!session_live_.load(std::memory_order_relaxed)) return;
  std::unique_lock lock(session_mutex_, std::try_to_lock);
  if (!lock.owns_lock() || session_ == nullptr) return;  // poll in flight
  auto st = session_->ping(transport, timeout);
  if (!st.ok()) {
    GLOG(debug, "gmetad") << "source " << config_.name
                          << ": federation ping failed: "
                          << st.error().to_string();
  }
}

std::optional<Result<std::string>> DataSource::piggyback_digest(
    net::Transport& transport, TimeUs timeout, std::string_view payload) {
  if (config_.federation_address.empty()) return std::nullopt;
  if (!session_live_.load(std::memory_order_relaxed)) return std::nullopt;
  std::unique_lock lock(session_mutex_, std::try_to_lock);
  if (!lock.owns_lock() || session_ == nullptr) return std::nullopt;
  piggyback_digests_.fetch_add(1, std::memory_order_relaxed);
  auto reply = session_->digest_exchange(transport, timeout, payload);
  if (!reply.ok()) {
    GLOG(debug, "gmetad") << "source " << config_.name
                          << ": piggybacked digest failed: "
                          << reply.error().to_string();
  }
  return reply;
}

Result<DataSource::Fetched> DataSource::fetch(net::Transport& transport,
                                              TimeUs timeout,
                                              std::int64_t now_s,
                                              CpuMeter* meter) {
  Error last = Err(Errc::exhausted, "no addresses configured");
  bool have_last = false;

  if (!config_.federation_address.empty() &&
      delta_retry_after_.load(std::memory_order_relaxed) <= now_s) {
    auto delta = fetch_delta(transport, timeout, now_s, meter);
    if (delta.ok()) return delta;
    // Delta path down: count it as a resync, back off, and let the legacy
    // XML path below carry this poll.
    delta_resyncs_.fetch_add(1, std::memory_order_relaxed);
    delta_retry_after_.store(now_s + config_.federation_resync_backoff_s,
                             std::memory_order_relaxed);
    last = delta.error();
    have_last = true;
    GLOG(debug, "gmetad") << "source " << config_.name << ": delta poll via "
                          << config_.federation_address
                          << " failed: " << last.to_string();
  }

  const std::size_t n = config_.addresses.size();
  const std::size_t preferred = preferred_.load(std::memory_order_relaxed);
  for (std::size_t attempt = 0; attempt < n; ++attempt) {
    const std::size_t index = (preferred + attempt) % n;
    const std::string& address = config_.addresses[index];

    auto stream = transport.connect(address, timeout);
    if (!stream.ok()) {
      last = stream.error();
      GLOG(debug, "gmetad") << "source " << config_.name << ": connect to "
                            << address << " failed: " << last.to_string();
      continue;
    }
    auto body = net::read_to_eof(**stream);
    if (!body.ok()) {
      last = body.error();
      GLOG(debug, "gmetad") << "source " << config_.name << ": read from "
                            << address << " failed: " << last.to_string();
      continue;
    }
    if (index != preferred) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      GLOG(info, "gmetad") << "source " << config_.name << ": failed over to "
                           << address;
      preferred_.store(index, std::memory_order_relaxed);
    }
    reachable_.store(true, std::memory_order_relaxed);
    consecutive_failures_.store(0, std::memory_order_relaxed);
    last_success_s_.store(now_s, std::memory_order_relaxed);
    {
      std::lock_guard lock(last_error_mutex_);
      last_error_.clear();
    }
    Fetched f;
    f.bytes = body->size();
    f.body = std::move(*body);
    full_polls_.fetch_add(1, std::memory_order_relaxed);
    bytes_full_.fetch_add(f.bytes, std::memory_order_relaxed);
    last_full_bytes_.store(f.bytes, std::memory_order_relaxed);
    return f;
  }
  reachable_.store(false, std::memory_order_relaxed);
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(last_error_mutex_);
    last_error_ = last.to_string();
  }
  if (n == 0 && have_last) {
    return Err(Errc::exhausted, "delta poll of source '" + config_.name +
                                    "' failed with no XML fallback: " +
                                    last.to_string());
  }
  return Err(Errc::exhausted,
             "all " + std::to_string(n) + " addresses of source '" +
                 config_.name + "' failed; last: " + last.to_string());
}

}  // namespace ganglia::gmetad
