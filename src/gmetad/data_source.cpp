#include "gmetad/data_source.hpp"

#include "common/log.hpp"

namespace ganglia::gmetad {

Result<std::string> DataSource::fetch(net::Transport& transport,
                                      TimeUs timeout, std::int64_t now_s) {
  Error last = Err(Errc::exhausted, "no addresses configured");
  const std::size_t n = config_.addresses.size();
  for (std::size_t attempt = 0; attempt < n; ++attempt) {
    const std::size_t index = (preferred_ + attempt) % n;
    const std::string& address = config_.addresses[index];

    auto stream = transport.connect(address, timeout);
    if (!stream.ok()) {
      last = stream.error();
      GLOG(debug, "gmetad") << "source " << config_.name << ": connect to "
                            << address << " failed: " << last.to_string();
      continue;
    }
    auto body = net::read_to_eof(**stream);
    if (!body.ok()) {
      last = body.error();
      GLOG(debug, "gmetad") << "source " << config_.name << ": read from "
                            << address << " failed: " << last.to_string();
      continue;
    }
    if (index != preferred_) {
      ++failovers_;
      GLOG(info, "gmetad") << "source " << config_.name << ": failed over to "
                           << address;
      preferred_ = index;
    }
    reachable_ = true;
    consecutive_failures_ = 0;
    last_success_s_ = now_s;
    last_error_.clear();
    return body;
  }
  reachable_ = false;
  ++consecutive_failures_;
  last_error_ = last.to_string();
  return Err(Errc::exhausted,
             "all " + std::to_string(n) + " addresses of source '" +
                 config_.name + "' failed; last: " + last.to_string());
}

}  // namespace ganglia::gmetad
