#include "gmetad/data_source.hpp"

#include "common/log.hpp"

namespace ganglia::gmetad {

Result<std::string> DataSource::fetch(net::Transport& transport,
                                      TimeUs timeout, std::int64_t now_s) {
  Error last = Err(Errc::exhausted, "no addresses configured");
  const std::size_t n = config_.addresses.size();
  const std::size_t preferred = preferred_.load(std::memory_order_relaxed);
  for (std::size_t attempt = 0; attempt < n; ++attempt) {
    const std::size_t index = (preferred + attempt) % n;
    const std::string& address = config_.addresses[index];

    auto stream = transport.connect(address, timeout);
    if (!stream.ok()) {
      last = stream.error();
      GLOG(debug, "gmetad") << "source " << config_.name << ": connect to "
                            << address << " failed: " << last.to_string();
      continue;
    }
    auto body = net::read_to_eof(**stream);
    if (!body.ok()) {
      last = body.error();
      GLOG(debug, "gmetad") << "source " << config_.name << ": read from "
                            << address << " failed: " << last.to_string();
      continue;
    }
    if (index != preferred) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      GLOG(info, "gmetad") << "source " << config_.name << ": failed over to "
                           << address;
      preferred_.store(index, std::memory_order_relaxed);
    }
    reachable_.store(true, std::memory_order_relaxed);
    consecutive_failures_.store(0, std::memory_order_relaxed);
    last_success_s_.store(now_s, std::memory_order_relaxed);
    {
      std::lock_guard lock(last_error_mutex_);
      last_error_.clear();
    }
    return body;
  }
  reachable_.store(false, std::memory_order_relaxed);
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(last_error_mutex_);
    last_error_ = last.to_string();
  }
  return Err(Errc::exhausted,
             "all " + std::to_string(n) + " addresses of source '" +
                 config_.name + "' failed; last: " + last.to_string());
}

}  // namespace ganglia::gmetad
