#include "gmetad/query.hpp"

#include "common/strings.hpp"
#include "xml/writer.hpp"

namespace ganglia::gmetad {

bool QuerySegment::matches(std::string_view name) const {
  if (!is_regex) return text == name;
  return std::regex_match(name.begin(), name.end(), pattern);
}

Result<ParsedQuery> parse_query(std::string_view line) {
  line = trim(line);
  if (line.empty() || line.front() != '/') {
    return Err(Errc::invalid_argument,
               "query must start with '/', got '" + std::string(line) + "'");
  }

  ParsedQuery query;
  const auto qmark = line.find('?');
  if (qmark != std::string_view::npos) {
    const std::string_view option = line.substr(qmark + 1);
    if (option == "filter=summary") {
      query.summary = true;
    } else {
      return Err(Errc::invalid_argument,
                 "unknown query option '" + std::string(option) + "'");
    }
    line = line.substr(0, qmark);
  }

  for (std::string_view raw : split(line, '/', /*skip_empty=*/true)) {
    QuerySegment segment;
    if (!raw.empty() && raw.front() == '~') {
      segment.is_regex = true;
      segment.text = std::string(raw.substr(1));
      try {
        segment.pattern = std::regex(segment.text,
                                     std::regex::ECMAScript | std::regex::optimize);
      } catch (const std::regex_error& e) {
        return Err(Errc::invalid_argument,
                   "bad regex '" + segment.text + "': " + e.what());
      }
    } else {
      segment.text = std::string(raw);
    }
    query.segments.push_back(std::move(segment));
  }
  return query;
}

namespace {

/// Write one host wrapped in its cluster's attributes.
void write_cluster_wrapper_open(xml::XmlWriter& w, const Cluster& cluster) {
  w.open("CLUSTER");
  w.attr("NAME", cluster.name);
  w.attr("LOCALTIME", cluster.localtime);
  if (!cluster.owner.empty()) w.attr("OWNER", cluster.owner);
}

void write_host_wrapper_open(xml::XmlWriter& w, const Host& host) {
  w.open("HOST");
  w.attr("NAME", host.name);
  w.attr("IP", host.ip);
  w.attr("REPORTED", host.reported);
  w.attr("TN", static_cast<std::uint64_t>(host.tn));
  w.attr("TMAX", static_cast<std::uint64_t>(host.tmax));
  w.attr("DMAX", static_cast<std::uint64_t>(host.dmax));
}

struct ResolveState {
  const ParsedQuery& query;
  xml::XmlWriter& writer;
  Mode mode;
  const SourceSnapshot* snapshot = nullptr;  ///< source being resolved
  std::size_t matches = 0;
  std::string redirect;  ///< authority URL hit below a summary grid
};

void resolve_host(ResolveState& state, const Cluster& cluster,
                  const Host& host, std::size_t seg) {
  const auto& segments = state.query.segments;
  if (seg == segments.size()) {
    write_cluster_wrapper_open(state.writer, cluster);
    write_host(state.writer, host);
    state.writer.close();
    ++state.matches;
    return;
  }
  // Exactly one more segment can match: a metric name (nothing lives
  // below a metric).
  if (seg + 1 != segments.size()) return;
  for (const Metric& metric : host.metrics) {
    if (!segments[seg].matches(metric.name)) continue;
    write_cluster_wrapper_open(state.writer, cluster);
    write_host_wrapper_open(state.writer, host);
    write_metric(state.writer, metric);
    state.writer.close();
    state.writer.close();
    ++state.matches;
  }
}

void resolve_cluster(ResolveState& state, const Cluster& cluster,
                     std::size_t seg) {
  const auto& segments = state.query.segments;
  if (seg == segments.size()) {
    if (state.query.summary) {
      // Serve the reduction precomputed on the summarisation time scale:
      // O(m), independent of cluster size.
      write_cluster_wrapper_open(state.writer, cluster);
      write_summary_info(state.writer,
                         state.snapshot->cluster_summary(cluster));
      state.writer.close();
    } else {
      write_cluster(state.writer, cluster);
    }
    ++state.matches;
    return;
  }
  if (cluster.is_summary_form()) {
    // Host data lives at the authority; nothing to descend into.
    return;
  }
  for (const auto& [host_name, host] : cluster.hosts) {
    if (!segments[seg].matches(host_name)) continue;
    resolve_host(state, cluster, host, seg + 1);
  }
}

void resolve_grid(ResolveState& state, const Grid& grid, std::size_t seg) {
  const auto& segments = state.query.segments;
  if (seg == segments.size()) {
    if (state.query.summary || grid.is_summary_form()) {
      state.writer.open("GRID");
      state.writer.attr("NAME", grid.name);
      state.writer.attr("AUTHORITY", grid.authority);
      state.writer.attr("LOCALTIME", grid.localtime);
      write_summary_info(state.writer, grid.summarize());
      state.writer.close();
    } else {
      write_grid(state.writer, grid);
    }
    ++state.matches;
    return;
  }
  if (grid.is_summary_form()) {
    // An N-level node keeps only the summary; the higher-resolution view
    // lives at the grid's own authority URL (the paper's pointer tree).
    if (state.redirect.empty()) state.redirect = grid.authority;
    return;
  }
  state.writer.open("GRID");
  state.writer.attr("NAME", grid.name);
  state.writer.attr("AUTHORITY", grid.authority);
  state.writer.attr("LOCALTIME", grid.localtime);
  for (const Cluster& cluster : grid.clusters) {
    if (segments[seg].matches(cluster.name)) {
      resolve_cluster(state, cluster, seg + 1);
    }
  }
  for (const Grid& child : grid.grids) {
    if (segments[seg].matches(child.name)) {
      resolve_grid(state, child, seg + 1);
    }
  }
  state.writer.close();
}

/// Write a full source per mode (the no-further-segments case).
void write_source_full(xml::XmlWriter& w, const SourceSnapshot& snapshot,
                       Mode mode, bool summary_only) {
  for (const Cluster& cluster : snapshot.clusters()) {
    if (summary_only) {
      write_cluster_wrapper_open(w, cluster);
      write_summary_info(w, snapshot.cluster_summary(cluster));
      w.close();
    } else {
      write_cluster(w, cluster);
    }
  }
  for (const Grid& grid : snapshot.grids()) {
    if (mode == Mode::n_level || summary_only || grid.is_summary_form()) {
      w.open("GRID");
      w.attr("NAME", grid.name);
      w.attr("AUTHORITY", grid.authority);
      w.attr("LOCALTIME", grid.localtime);
      write_summary_info(w, grid.summarize());
      w.close();
    } else {
      write_grid(w, grid);  // 1-level: forward the union, full detail
    }
  }
}

}  // namespace

std::string QueryEngine::render(const ParsedQuery& query,
                                const QueryContext& ctx, std::size_t& matches,
                                std::string& redirect) const {
  std::string out;
  xml::XmlWriter w(out);
  w.declaration();
  w.open("GANGLIA_XML");
  w.attr("VERSION", ctx.version);
  w.attr("SOURCE", "gmetad");
  w.open("GRID");
  w.attr("NAME", ctx.grid_name);
  w.attr("AUTHORITY", ctx.authority);
  w.attr("LOCALTIME", ctx.now);

  const auto snapshots = store_.all();

  if (query.segments.empty()) {
    if (query.summary) {
      // Meta view: per-source summary rows followed by the grand total —
      // O(sources * m) bytes instead of O(C*H*m).
      SummaryInfo total;
      for (const auto& snapshot : snapshots) {
        write_source_full(w, *snapshot, ctx.mode, /*summary_only=*/true);
        total.merge(snapshot->summary());
      }
      write_summary_info(w, total);
      matches = 1;
    } else {
      for (const auto& snapshot : snapshots) {
        write_source_full(w, *snapshot, ctx.mode, false);
      }
      matches = 1;
    }
    w.close();
    w.close();
    return out;
  }

  ResolveState state{query, w, ctx.mode, nullptr, 0, {}};
  for (const auto& snapshot : snapshots) {
    if (!query.segments[0].matches(snapshot->name())) continue;
    state.snapshot = snapshot.get();
    // The source's own node: single cluster for gmond sources, the child's
    // top grid for gmetad sources.
    for (const Cluster& cluster : snapshot->clusters()) {
      resolve_cluster(state, cluster, 1);
    }
    for (const Grid& grid : snapshot->grids()) {
      resolve_grid(state, grid, 1);
    }
  }
  matches = state.matches;
  redirect = state.redirect;
  w.close();
  w.close();
  return out;
}

Result<std::string> QueryEngine::execute(std::string_view line,
                                         const QueryContext& ctx) const {
  auto parsed = parse_query(line);
  if (!parsed.ok()) return parsed.error();
  std::size_t matches = 0;
  std::string redirect;
  std::string out = render(*parsed, ctx, matches, redirect);
  if (matches == 0) {
    if (!redirect.empty()) {
      return Err(Errc::not_found,
                 "subtree is summarised here; full resolution at authority " +
                     redirect);
    }
    return Err(Errc::not_found,
               "no subtree matches '" + std::string(trim(line)) + "'");
  }
  return out;
}

std::string QueryEngine::dump(const QueryContext& ctx) const {
  ParsedQuery all;  // "/"
  std::size_t matches = 0;
  std::string redirect;
  return render(all, ctx, matches, redirect);
}

}  // namespace ganglia::gmetad
