#include "gmetad/query.hpp"

#include "common/strings.hpp"
#include "gmetad/render/fragments.hpp"
#include "gmetad/render/json_backend.hpp"
#include "gmetad/render/traversal.hpp"
#include "gmetad/render/xml_backend.hpp"

namespace ganglia::gmetad {

bool QuerySegment::matches(std::string_view name) const {
  if (!is_regex) return text == name;
  return std::regex_match(name.begin(), name.end(), pattern);
}

Result<ParsedQuery> parse_query(std::string_view line) {
  line = trim(line);
  if (line.size() > kMaxQueryBytes) {
    return Err(Errc::invalid_argument,
               "query exceeds " + std::to_string(kMaxQueryBytes) + " bytes");
  }
  if (line.empty() || line.front() != '/') {
    return Err(Errc::invalid_argument,
               "query must start with '/', got '" + std::string(line) + "'");
  }

  ParsedQuery query;
  const auto qmark = line.find('?');
  if (qmark != std::string_view::npos) {
    const std::string_view option = line.substr(qmark + 1);
    if (option == "filter=summary") {
      query.summary = true;
    } else {
      return Err(Errc::invalid_argument,
                 "unknown query option '" + std::string(option) + "'");
    }
    line = line.substr(0, qmark);
  }

  for (std::string_view raw : split(line, '/', /*skip_empty=*/true)) {
    if (query.segments.size() >= kMaxQuerySegments) {
      return Err(Errc::invalid_argument,
                 "query exceeds " + std::to_string(kMaxQuerySegments) +
                     " segments");
    }
    QuerySegment segment;
    if (!raw.empty() && raw.front() == '~') {
      segment.is_regex = true;
      segment.text = std::string(raw.substr(1));
      if (segment.text.size() > kMaxRegexBytes) {
        // The cap bounds both std::regex construction (NFA size grows with
        // the pattern) and ECMAScript backtracking at match time.
        return Err(Errc::invalid_argument,
                   "regex exceeds " + std::to_string(kMaxRegexBytes) +
                       " bytes");
      }
      try {
        segment.pattern = std::regex(segment.text,
                                     std::regex::ECMAScript | std::regex::optimize);
      } catch (const std::regex_error& e) {
        return Err(Errc::invalid_argument,
                   "bad regex '" + segment.text + "': " + e.what());
      }
    } else {
      segment.text = std::string(raw);
    }
    query.segments.push_back(std::move(segment));
  }
  return query;
}

namespace {

/// Shared state of one query resolution across the document's two passes.
struct ResolveState {
  const ParsedQuery& query;
  render::Backend& backend;
  const SourceSnapshot* snapshot = nullptr;  ///< source being resolved
  std::size_t matches = 0;
  std::string redirect;  ///< authority URL hit below a summary grid
};

void resolve_host(ResolveState& state, const Cluster& cluster,
                  const Host& host, std::size_t seg) {
  const auto& segments = state.query.segments;
  if (seg == segments.size()) {
    render::walk_host_in_cluster(cluster, host, state.backend);
    ++state.matches;
    return;
  }
  // Exactly one more segment can match: a metric name (nothing lives
  // below a metric).
  if (seg + 1 != segments.size()) return;
  for (const Metric& metric : host.metrics) {
    if (!segments[seg].matches(metric.name)) continue;
    state.backend.begin_cluster(cluster);
    state.backend.begin_host(host);
    state.backend.metric(host, metric);
    state.backend.end_host(host);
    state.backend.end_cluster(cluster);
    ++state.matches;
  }
}

void resolve_cluster(ResolveState& state, const Cluster& cluster,
                     std::size_t seg) {
  const auto& segments = state.query.segments;
  if (seg == segments.size()) {
    if (state.query.summary) {
      // Serve the reduction precomputed on the summarisation time scale:
      // O(m), independent of cluster size.
      render::walk_cluster_summary(
          cluster, state.snapshot->cluster_summary(cluster), state.backend);
    } else {
      render::walk_cluster(cluster, state.backend);
    }
    ++state.matches;
    return;
  }
  if (cluster.is_summary_form()) {
    // Host data lives at the authority; nothing to descend into.
    return;
  }
  for (const auto& [host_name, host] : cluster.hosts) {
    if (!segments[seg].matches(host_name)) continue;
    resolve_host(state, cluster, host, seg + 1);
  }
}

void resolve_grid(ResolveState& state, const Grid& grid, std::size_t seg) {
  const auto& segments = state.query.segments;
  if (seg == segments.size()) {
    if (state.query.summary || grid.is_summary_form()) {
      render::walk_grid_summary(grid, grid.summarize(), state.backend);
    } else {
      render::walk_grid(grid, state.backend);
    }
    ++state.matches;
    return;
  }
  if (grid.is_summary_form()) {
    // An N-level node keeps only the summary; the higher-resolution view
    // lives at the grid's own authority URL (the paper's pointer tree).
    if (state.redirect.empty()) state.redirect = grid.authority;
    return;
  }
  state.backend.begin_grid(grid);
  for (const Cluster& cluster : grid.clusters) {
    if (segments[seg].matches(cluster.name)) {
      resolve_cluster(state, cluster, seg + 1);
    }
  }
  for (const Grid& child : grid.grids) {
    if (segments[seg].matches(child.name)) {
      resolve_grid(state, child, seg + 1);
    }
  }
  state.backend.end_grid(grid);
}

render::SourceInfo source_info(const SourceSnapshot& snapshot) {
  return render::SourceInfo{snapshot.name(), snapshot.is_grid(),
                            snapshot.reachable()};
}

}  // namespace

render::Deps QueryEngine::render_document(const ParsedQuery& query,
                                          const QueryContext& ctx,
                                          render::Backend& backend,
                                          const render::Format* splice_format,
                                          std::size_t& matches,
                                          std::string& redirect) const {
  // The dependency set mirrors what the walk below reads: a literal first
  // segment touches exactly one source; everything else (whole tree, meta
  // view, regex) reads all sources *and* depends on the set's membership.
  render::Deps deps;
  std::uint64_t structure_version = 0;
  auto sources = store_.all_versioned(&structure_version);
  const bool whole_set =
      query.segments.empty() || query.segments.front().is_regex;
  if (whole_set) {
    deps.structure = true;
    deps.structure_version = structure_version;
    deps.sources.reserve(sources.size());
    for (const auto& vs : sources) {
      deps.sources.push_back({vs.snapshot->name(), vs.version});
    }
  } else {
    for (const auto& vs : sources) {
      if (vs.snapshot->name() == query.segments.front().text) {
        deps.sources.push_back({vs.snapshot->name(), vs.version});
      }
    }
  }

  render::DocumentInfo info;
  info.version = ctx.version;
  info.source = "gmetad";
  info.grid_name = ctx.grid_name;
  info.authority = ctx.authority;
  info.localtime = ctx.now;
  backend.begin_document(info);

  // Two passes — clusters, then grids — so formats with per-kind child
  // arrays (JSON) compose without buffering; XML ignores the boundary.
  if (query.segments.empty()) {
    if (query.summary) {
      // Meta view: per-source summary rows followed by the grand total —
      // O(sources * m) bytes instead of O(C*H*m).
      SummaryInfo total;
      for (const auto& vs : sources) {
        backend.begin_source(source_info(*vs.snapshot));
        render::walk_source_clusters(*vs.snapshot, /*summary_only=*/true,
                                     backend);
        total.merge(vs.snapshot->summary());
        backend.end_source();
      }
      for (const auto& vs : sources) {
        backend.begin_source(source_info(*vs.snapshot));
        render::walk_source_grids(*vs.snapshot, ctx.mode,
                                  /*summary_only=*/true, backend);
        backend.end_source();
      }
      backend.total(total);
    } else {
      // Whole tree: splice publish-time fragments when the backend has a
      // serialized form, walk otherwise.
      for (const auto& vs : sources) {
        backend.begin_source(source_info(*vs.snapshot));
        if (splice_format != nullptr) {
          backend.splice_clusters(
              render::cluster_fragment(*vs.snapshot, *splice_format));
        } else {
          render::walk_source_clusters(*vs.snapshot, /*summary_only=*/false,
                                       backend);
        }
        backend.end_source();
      }
      for (const auto& vs : sources) {
        backend.begin_source(source_info(*vs.snapshot));
        if (splice_format != nullptr) {
          backend.splice_grids(
              render::grid_fragment(*vs.snapshot, *splice_format, ctx.mode));
        } else {
          render::walk_source_grids(*vs.snapshot, ctx.mode,
                                    /*summary_only=*/false, backend);
        }
        backend.end_source();
      }
    }
    matches = 1;
  } else {
    ResolveState state{query, backend, nullptr, 0, {}};
    for (const auto& vs : sources) {
      if (!query.segments.front().matches(vs.snapshot->name())) continue;
      state.snapshot = vs.snapshot.get();
      backend.begin_source(source_info(*vs.snapshot));
      // The source's own node: single cluster for gmond sources, the
      // child's top grid for gmetad sources.
      for (const Cluster& cluster : vs.snapshot->clusters()) {
        resolve_cluster(state, cluster, 1);
      }
      backend.end_source();
    }
    for (const auto& vs : sources) {
      if (!query.segments.front().matches(vs.snapshot->name())) continue;
      state.snapshot = vs.snapshot.get();
      backend.begin_source(source_info(*vs.snapshot));
      for (const Grid& grid : vs.snapshot->grids()) {
        resolve_grid(state, grid, 1);
      }
      backend.end_source();
    }
    matches = state.matches;
    redirect = state.redirect;
  }

  backend.end_document();
  return deps;
}

render::Deps QueryEngine::render_with(const ParsedQuery& query,
                                      const QueryContext& ctx,
                                      render::Backend& backend,
                                      std::size_t& matches,
                                      std::string& redirect) const {
  return render_document(query, ctx, backend, nullptr, matches, redirect);
}

Result<RenderedQuery> QueryEngine::execute_rendered(
    std::string_view line, const QueryContext& ctx,
    render::Format format) const {
  auto parsed = parse_query(line);
  if (!parsed.ok()) return parsed.error();

  RenderedQuery out;
  // Fragments exist only for the whole-tree full-detail walk; narrower
  // queries re-walk their (small) matched subtree.
  const bool splice = use_fragments_ && parsed->segments.empty() &&
                      !parsed->summary;
  const render::Format* splice_format = splice ? &format : nullptr;
  if (format == render::Format::xml) {
    render::XmlBackend backend(out.body);
    out.deps = render_document(*parsed, ctx, backend, splice_format,
                               out.matches, out.redirect);
  } else {
    render::JsonBackend backend(out.body);
    out.deps = render_document(*parsed, ctx, backend, splice_format,
                               out.matches, out.redirect);
  }

  if (out.matches == 0) {
    if (!out.redirect.empty()) {
      return Err(Errc::not_found,
                 "subtree is summarised here; full resolution at authority " +
                     out.redirect);
    }
    return Err(Errc::not_found,
               "no subtree matches '" + std::string(trim(line)) + "'");
  }
  return out;
}

Result<std::string> QueryEngine::execute(std::string_view line,
                                         const QueryContext& ctx) const {
  auto rendered = execute_rendered(line, ctx, render::Format::xml);
  if (!rendered.ok()) return rendered.error();
  return std::move(rendered->body);
}

std::string QueryEngine::dump(const QueryContext& ctx) const {
  ParsedQuery all;  // "/"
  std::string out;
  render::XmlBackend backend(out);
  const render::Format xml = render::Format::xml;
  std::size_t matches = 0;
  std::string redirect;
  render_document(all, ctx, backend, use_fragments_ ? &xml : nullptr, matches,
                  redirect);
  return out;
}

}  // namespace ganglia::gmetad
