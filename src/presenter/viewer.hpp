// Viewer: the web-frontend emulator.
//
// The paper's third experiment measures "the time needed by the viewer to
// download and parse the XML from a gmeta agent" for its three central
// views (meta / cluster / host).  This class reproduces both viewing
// strategies:
//
//  * Strategy::one_level — the old frontend: download the *entire* tree
//    from the dump port, SAX-parse all of it, extract the part on display,
//    and compute its own summaries for the meta view ("the viewer must
//    parse and discard much of the data it receives").
//
//  * Strategy::n_level — the new frontend: issue one subtree query to the
//    interactive port per page (`/?filter=summary`, `/cluster`,
//    `/cluster/host`) and parse only what is shown.
//
// Timings bracket connect→download→parse exactly like the paper's
// gettimeofday() instrumentation.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "net/transport.hpp"
#include "rrd/rrd.hpp"
#include "xml/ganglia.hpp"

namespace ganglia::presenter {

enum class Strategy { one_level, n_level };

/// What the last page load cost.
struct ViewTiming {
  double total_seconds = 0;      ///< download + parse (the paper's number)
  std::size_t xml_bytes = 0;     ///< document size transferred
  std::size_t hosts_parsed = 0;  ///< HOST elements the parser had to touch
};

/// One row of the meta page: a monitored source in summary form.
struct MetaRow {
  std::string name;
  bool is_grid = false;
  SummaryInfo summary;
};

struct MetaView {
  std::string grid_name;
  std::vector<MetaRow> sources;
  SummaryInfo total;
};

struct ClusterView {
  Cluster cluster;  ///< full resolution
};

struct HostView {
  std::string cluster_name;
  Host host;
};

class Viewer {
 public:
  Viewer(net::Transport& transport, std::string dump_address,
         std::string interactive_address, Strategy strategy,
         TimeUs io_timeout = 10 * kMicrosPerSecond)
      : transport_(transport),
        dump_address_(std::move(dump_address)),
        interactive_address_(std::move(interactive_address)),
        strategy_(strategy),
        io_timeout_(io_timeout) {}

  Result<MetaView> meta_view();
  Result<ClusterView> cluster_view(std::string_view cluster);
  Result<HostView> host_view(std::string_view cluster, std::string_view host);

  /// Archived history for a metric, fetched over the interactive port's
  /// HISTORY command ("/source/cluster/host/metric" or "/scope/metric").
  /// Available regardless of strategy (the 1-level PHP frontend read RRD
  /// files directly; this is the network equivalent).
  Result<rrd::Series> history(std::string_view path, std::int64_t start,
                              std::int64_t end);

  const ViewTiming& last_timing() const noexcept { return timing_; }
  Strategy strategy() const noexcept { return strategy_; }

 private:
  /// Download (dump or query) + parse, with the paper's timing bracket.
  Result<Report> load(const std::string* query_line);

  net::Transport& transport_;
  std::string dump_address_;
  std::string interactive_address_;
  Strategy strategy_;
  TimeUs io_timeout_;
  ViewTiming timing_;
};

}  // namespace ganglia::presenter
