#include "presenter/html_backend.hpp"

#include "common/strings.hpp"
#include "xml/escape.hpp"

namespace ganglia::presenter {

namespace {

const char* kStyle =
    "<style>body{font-family:sans-serif;margin:2em}"
    "table{border-collapse:collapse}td,th{border:1px solid #999;"
    "padding:4px 10px;text-align:left}th{background:#eee}"
    "h1{font-size:1.3em}.down{color:#b00}.up{color:#080}</style>";

std::string page(const std::string& title, const std::string& body) {
  return "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>" +
         xml::escape(title) + "</title>" + kStyle + "</head><body><h1>" +
         xml::escape(title) + "</h1>" + body + "</body></html>\n";
}

double summary_mean(const SummaryInfo& s, const std::string& metric) {
  const auto it = s.metrics.find(metric);
  return it == s.metrics.end() ? 0.0 : it->second.mean();
}

double summary_sum(const SummaryInfo& s, const std::string& metric) {
  const auto it = s.metrics.find(metric);
  return it == s.metrics.end() ? 0.0 : it->second.sum;
}

}  // namespace

// ------------------------------------------------------------------- meta

void MetaHtmlBackend::begin_document(const gmetad::render::DocumentInfo& info) {
  view_.grid_name = std::string(info.grid_name);
}

void MetaHtmlBackend::begin_source(const gmetad::render::SourceInfo& info) {
  for (std::size_t i = 0; i < view_.sources.size(); ++i) {
    if (view_.sources[i].name == info.name) {
      current_ = i;
      return;
    }
  }
  MetaRow row;
  row.name = std::string(info.name);
  row.is_grid = info.is_grid;
  current_ = view_.sources.size();
  view_.sources.push_back(std::move(row));
}

void MetaHtmlBackend::end_source() { current_ = static_cast<std::size_t>(-1); }

void MetaHtmlBackend::summary(const SummaryInfo& info) {
  if (current_ < view_.sources.size()) view_.sources[current_].summary.merge(info);
}

void MetaHtmlBackend::total(const SummaryInfo& info) { view_.total = info; }

std::string MetaHtmlBackend::take_html() const {
  std::string body =
      "<table><tr><th>Source</th><th>Kind</th><th>Hosts up</th>"
      "<th>Hosts down</th><th>CPUs</th><th>Load (1m, mean)</th></tr>";
  for (const MetaRow& row : view_.sources) {
    body += "<tr><td>" + xml::escape(row.name) + "</td><td>" +
            (row.is_grid ? "grid" : "cluster") + "</td><td class=\"up\">" +
            std::to_string(row.summary.hosts_up) + "</td><td class=\"down\">" +
            std::to_string(row.summary.hosts_down) + "</td><td>" +
            strprintf("%.0f", summary_sum(row.summary, "cpu_num")) +
            "</td><td>" +
            strprintf("%.2f", summary_mean(row.summary, "load_one")) +
            "</td></tr>";
  }
  body += "<tr><th>TOTAL</th><th></th><th>" +
          std::to_string(view_.total.hosts_up) + "</th><th>" +
          std::to_string(view_.total.hosts_down) + "</th><th>" +
          strprintf("%.0f", summary_sum(view_.total, "cpu_num")) + "</th><th>" +
          strprintf("%.2f", summary_mean(view_.total, "load_one")) +
          "</th></tr></table>";
  return page("Grid " + view_.grid_name + " — meta view", body);
}

// ---------------------------------------------------------------- cluster

void ClusterHtmlBackend::begin_cluster(const Cluster& cluster) {
  if (name_.empty()) name_ = cluster.name;
}

void ClusterHtmlBackend::begin_host(const Host& host) {
  Row row;
  row.name = host.name;
  row.ip = host.ip;
  row.up = host.is_up();
  if (row.up) {
    ++hosts_up_;
  } else {
    ++hosts_down_;
  }
  rows_.push_back(std::move(row));
  have_row_ = true;
}

void ClusterHtmlBackend::metric(const Host& host, const Metric& metric) {
  (void)host;
  if (!have_row_) return;
  Row& row = rows_.back();
  // First occurrence wins, matching find_metric() on the old view path.
  if (metric.name == "load_one" && row.load == "-") {
    row.load = metric.value;
  } else if (metric.name == "cpu_user" && row.cpu == "-") {
    row.cpu = metric.value;
  } else if (metric.name == "mem_free" && row.mem == "-") {
    row.mem = metric.value;
  }
}

void ClusterHtmlBackend::end_host(const Host& host) {
  (void)host;
  have_row_ = false;
}

void ClusterHtmlBackend::summary(const SummaryInfo& info) {
  // A summary-form cluster: up/down counts come from the stored reduction
  // (there are no host events to count).
  hosts_up_ = info.hosts_up;
  hosts_down_ = info.hosts_down;
}

std::string ClusterHtmlBackend::take_html() const {
  std::string body = "<p>" + std::to_string(hosts_up_) + " up, " +
                     std::to_string(hosts_down_) + " down</p>";
  body +=
      "<table><tr><th>Host</th><th>IP</th><th>State</th><th>Load 1m</th>"
      "<th>CPU user %</th><th>Mem free KB</th></tr>";
  for (const Row& row : rows_) {
    body += "<tr><td>" + xml::escape(row.name) + "</td><td>" +
            xml::escape(row.ip) + "</td><td class=\"" +
            (row.up ? "up\">up" : "down\">down") + "</td><td>" + row.load +
            "</td><td>" + row.cpu + "</td><td>" + row.mem + "</td></tr>";
  }
  body += "</table>";
  return page("Cluster " + name_, body);
}

// ------------------------------------------------------------------- host

void HostHtmlBackend::begin_host(const Host& host) {
  host_name_ = host.name;
  header_ = "<p>IP " + xml::escape(host.ip) + ", " +
            (host.is_up() ? "up" : "down") + ", last heard " +
            std::to_string(host.tn) + "s ago</p>";
}

void HostHtmlBackend::metric(const Host& host, const Metric& m) {
  (void)host;
  table_rows_ += "<tr><td>" + xml::escape(m.name) + "</td><td>" +
                 xml::escape(m.value) + "</td><td>" + xml::escape(m.units) +
                 "</td><td>" + std::string(metric_type_name(m.type)) +
                 "</td><td>" + std::to_string(m.tn) + "</td></tr>";
}

std::string HostHtmlBackend::take_html() const {
  std::string body = header_;
  for (const auto& [metric_name, series] : histories_) {
    rrd::SvgGraphOptions graph;
    graph.title = metric_name + " — " + host_name_;
    body += "<div>" + rrd::render_svg(series, graph) + "</div>";
  }
  body +=
      "<table><tr><th>Metric</th><th>Value</th><th>Units</th>"
      "<th>Type</th><th>TN</th></tr>";
  body += table_rows_;
  body += "</table>";
  return page("Host " + host_name_ + " (" + cluster_name_ + ")", body);
}

}  // namespace ganglia::presenter
