// Static HTML renderers for the three views.
//
// The paper's frontend renders PHP pages; these helpers produce the same
// pages as standalone HTML so the examples can drop browsable snapshots of
// the monitoring tree on disk.
#pragma once

#include <string>
#include <vector>

#include "presenter/viewer.hpp"
#include "rrd/graph.hpp"

namespace ganglia::presenter {

std::string render_meta_html(const MetaView& view);
std::string render_cluster_html(const ClusterView& view);

/// Host page; when `histories` are supplied (metric name + fetched series),
/// each renders as an inline SVG graph above the metric table — the
/// rrdtool-graph panel of the real frontend.
std::string render_host_html(
    const HostView& view,
    const std::vector<std::pair<std::string, rrd::Series>>& histories = {});

}  // namespace ganglia::presenter
