#include "presenter/viewer.hpp"

#include "common/strings.hpp"
#include "xml/dom.hpp"

namespace ganglia::presenter {

namespace {

std::size_t count_hosts(const Report& report) {
  std::size_t n = 0;
  for (const Cluster& c : report.clusters) n += c.hosts.size();
  for (const Grid& g : report.grids) n += g.host_count();
  return n;
}

/// Depth-first search for a cluster by name across the whole report.
const Cluster* find_cluster(const Report& report, std::string_view name) {
  for (const Cluster& c : report.clusters) {
    if (c.name == name) return &c;
  }
  struct Finder {
    std::string_view name;
    const Cluster* find(const Grid& grid) const {
      for (const Cluster& c : grid.clusters) {
        if (c.name == name) return &c;
      }
      for (const Grid& g : grid.grids) {
        if (const Cluster* hit = find(g)) return hit;
      }
      return nullptr;
    }
  } finder{name};
  for (const Grid& g : report.grids) {
    if (const Cluster* hit = finder.find(g)) return hit;
  }
  return nullptr;
}

}  // namespace

Result<Report> Viewer::load(const std::string* query_line) {
  const auto start = std::chrono::steady_clock::now();
  timing_ = ViewTiming{};

  // -- download (the paper's "socket connection" half of the bracket) -----
  Result<std::string> body = [&]() -> Result<std::string> {
    if (query_line == nullptr) {
      auto stream = transport_.connect(dump_address_, io_timeout_);
      if (!stream.ok()) return stream.error();
      return net::read_to_eof(**stream);
    }
    auto stream = transport_.connect(interactive_address_, io_timeout_);
    if (!stream.ok()) return stream.error();
    if (Status s = (*stream)->write_all(*query_line + "\n"); !s.ok()) {
      return s.error();
    }
    return net::read_to_eof(**stream);
  }();
  if (!body.ok()) return body.error();
  timing_.xml_bytes = body->size();

  // -- parse ----------------------------------------------------------------
  auto report = parse_report(*body);
  const auto end = std::chrono::steady_clock::now();
  timing_.total_seconds =
      std::chrono::duration<double>(end - start).count();
  if (!report.ok()) return report.error();
  timing_.hosts_parsed = count_hosts(*report);
  return report;
}

Result<rrd::Series> Viewer::history(std::string_view path, std::int64_t start,
                                    std::int64_t end) {
  auto stream = transport_.connect(interactive_address_, io_timeout_);
  if (!stream.ok()) return stream.error();
  const std::string line = "HISTORY " + std::string(path) + " " +
                           std::to_string(start) + " " + std::to_string(end) +
                           "\n";
  if (Status s = (*stream)->write_all(line); !s.ok()) return s.error();
  auto body = net::read_to_eof(**stream);
  if (!body.ok()) return body.error();

  auto dom = xml::parse_dom(*body);
  if (!dom.ok()) return dom.error();
  const xml::DomNode& root = **dom;
  if (root.name != "SERIES") {
    return Err(Errc::parse_error, "expected <SERIES>, got <" + root.name + ">");
  }
  rrd::Series series;
  series.start = parse_i64(root.attr("START")).value_or(0);
  series.step = parse_i64(root.attr("STEP")).value_or(0);
  series.end = parse_i64(root.attr("END")).value_or(0);
  if (series.step <= 0) {
    return Err(Errc::parse_error, "SERIES missing a positive STEP");
  }
  for (std::string_view token : split_ws(root.text)) {
    if (token == "U") {
      series.values.push_back(rrd::unknown());
    } else if (auto v = parse_double(token)) {
      series.values.push_back(*v);
    } else {
      return Err(Errc::parse_error,
                 "bad sample '" + std::string(token) + "' in SERIES");
    }
  }
  return series;
}

Result<MetaView> Viewer::meta_view() {
  Result<Report> report = [&] {
    if (strategy_ == Strategy::one_level) return load(nullptr);
    const std::string q = "/?filter=summary";
    return load(&q);
  }();
  if (!report.ok()) return report.error();

  MetaView view;
  const Grid* root =
      report->grids.empty() ? nullptr : &report->grids.front();
  if (root != nullptr) view.grid_name = root->name;

  const auto add_cluster = [&](const Cluster& c) {
    MetaRow row;
    row.name = c.name;
    row.is_grid = false;
    // The 1-level frontend computes this reduction itself from the raw
    // host data; the N-level frontend reads it straight off the wire.
    row.summary = c.summarize();
    view.total.merge(row.summary);
    view.sources.push_back(std::move(row));
  };
  const auto add_grid = [&](const Grid& g) {
    MetaRow row;
    row.name = g.name;
    row.is_grid = true;
    row.summary = g.summarize();
    view.total.merge(row.summary);
    view.sources.push_back(std::move(row));
  };

  if (root != nullptr) {
    for (const Cluster& c : root->clusters) add_cluster(c);
    for (const Grid& g : root->grids) add_grid(g);
  } else {
    for (const Cluster& c : report->clusters) add_cluster(c);
  }
  return view;
}

Result<ClusterView> Viewer::cluster_view(std::string_view cluster) {
  Result<Report> report = [&] {
    if (strategy_ == Strategy::one_level) return load(nullptr);
    const std::string q = "/" + std::string(cluster);
    return load(&q);
  }();
  if (!report.ok()) return report.error();

  const Cluster* hit = find_cluster(*report, cluster);
  if (hit == nullptr) {
    return Err(Errc::not_found,
               "cluster '" + std::string(cluster) + "' not in report");
  }
  ClusterView view;
  view.cluster = *hit;
  return view;
}

Result<HostView> Viewer::host_view(std::string_view cluster,
                                   std::string_view host) {
  Result<Report> report = [&] {
    if (strategy_ == Strategy::one_level) return load(nullptr);
    const std::string q = "/" + std::string(cluster) + "/" + std::string(host);
    return load(&q);
  }();
  if (!report.ok()) return report.error();

  const Cluster* hit = find_cluster(*report, cluster);
  if (hit == nullptr) {
    return Err(Errc::not_found,
               "cluster '" + std::string(cluster) + "' not in report");
  }
  const auto it = hit->hosts.find(std::string(host));
  if (it == hit->hosts.end()) {
    return Err(Errc::not_found, "host '" + std::string(host) + "' not in '" +
                                    std::string(cluster) + "'");
  }
  HostView view;
  view.cluster_name = hit->name;
  view.host = it->second;
  return view;
}

}  // namespace ganglia::presenter
