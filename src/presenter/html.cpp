#include "presenter/html.hpp"

#include "gmetad/render/traversal.hpp"
#include "presenter/html_backend.hpp"

namespace ganglia::presenter {

// Each renderer drives the unified render pipeline's HTML backends: views
// fetched over the wire (the Viewer's structs) synthesize the same event
// stream the gmetad-side document walk produces, so there is exactly one
// HTML table builder per page regardless of where the data came from.

std::string render_meta_html(const MetaView& view) {
  MetaHtmlBackend backend;
  gmetad::render::DocumentInfo info;
  info.grid_name = view.grid_name;
  backend.begin_document(info);
  for (const MetaRow& row : view.sources) {
    backend.begin_source({row.name, row.is_grid, /*reachable=*/true});
    backend.summary(row.summary);
    backend.end_source();
  }
  backend.total(view.total);
  backend.end_document();
  return backend.take_html();
}

std::string render_cluster_html(const ClusterView& view) {
  ClusterHtmlBackend backend;
  gmetad::render::walk_cluster(view.cluster, backend);
  return backend.take_html();
}

std::string render_host_html(
    const HostView& view,
    const std::vector<std::pair<std::string, rrd::Series>>& histories) {
  HostHtmlBackend backend(view.cluster_name, histories);
  gmetad::render::walk_host_subtree(view.host, backend);
  return backend.take_html();
}

}  // namespace ganglia::presenter
