#include "presenter/html.hpp"

#include "common/strings.hpp"
#include "xml/escape.hpp"

namespace ganglia::presenter {

namespace {

const char* kStyle =
    "<style>body{font-family:sans-serif;margin:2em}"
    "table{border-collapse:collapse}td,th{border:1px solid #999;"
    "padding:4px 10px;text-align:left}th{background:#eee}"
    "h1{font-size:1.3em}.down{color:#b00}.up{color:#080}</style>";

std::string page(const std::string& title, const std::string& body) {
  return "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>" +
         xml::escape(title) + "</title>" + kStyle + "</head><body><h1>" +
         xml::escape(title) + "</h1>" + body + "</body></html>\n";
}

double summary_mean(const SummaryInfo& s, const std::string& metric) {
  const auto it = s.metrics.find(metric);
  return it == s.metrics.end() ? 0.0 : it->second.mean();
}

double summary_sum(const SummaryInfo& s, const std::string& metric) {
  const auto it = s.metrics.find(metric);
  return it == s.metrics.end() ? 0.0 : it->second.sum;
}

}  // namespace

std::string render_meta_html(const MetaView& view) {
  std::string body =
      "<table><tr><th>Source</th><th>Kind</th><th>Hosts up</th>"
      "<th>Hosts down</th><th>CPUs</th><th>Load (1m, mean)</th></tr>";
  for (const MetaRow& row : view.sources) {
    body += "<tr><td>" + xml::escape(row.name) + "</td><td>" +
            (row.is_grid ? "grid" : "cluster") + "</td><td class=\"up\">" +
            std::to_string(row.summary.hosts_up) + "</td><td class=\"down\">" +
            std::to_string(row.summary.hosts_down) + "</td><td>" +
            strprintf("%.0f", summary_sum(row.summary, "cpu_num")) +
            "</td><td>" +
            strprintf("%.2f", summary_mean(row.summary, "load_one")) +
            "</td></tr>";
  }
  body += "<tr><th>TOTAL</th><th></th><th>" +
          std::to_string(view.total.hosts_up) + "</th><th>" +
          std::to_string(view.total.hosts_down) + "</th><th>" +
          strprintf("%.0f", summary_sum(view.total, "cpu_num")) + "</th><th>" +
          strprintf("%.2f", summary_mean(view.total, "load_one")) +
          "</th></tr></table>";
  return page("Grid " + view.grid_name + " — meta view", body);
}

std::string render_cluster_html(const ClusterView& view) {
  const SummaryInfo summary = view.cluster.summarize();
  std::string body = "<p>" + std::to_string(summary.hosts_up) + " up, " +
                     std::to_string(summary.hosts_down) + " down</p>";
  body +=
      "<table><tr><th>Host</th><th>IP</th><th>State</th><th>Load 1m</th>"
      "<th>CPU user %</th><th>Mem free KB</th></tr>";
  for (const auto& [name, host] : view.cluster.hosts) {
    const Metric* load = host.find_metric("load_one");
    const Metric* cpu = host.find_metric("cpu_user");
    const Metric* mem = host.find_metric("mem_free");
    body += "<tr><td>" + xml::escape(name) + "</td><td>" +
            xml::escape(host.ip) + "</td><td class=\"" +
            (host.is_up() ? "up\">up" : "down\">down") + "</td><td>" +
            (load != nullptr ? load->value : "-") + "</td><td>" +
            (cpu != nullptr ? cpu->value : "-") + "</td><td>" +
            (mem != nullptr ? mem->value : "-") + "</td></tr>";
  }
  body += "</table>";
  return page("Cluster " + view.cluster.name, body);
}

std::string render_host_html(
    const HostView& view,
    const std::vector<std::pair<std::string, rrd::Series>>& histories) {
  std::string body = "<p>IP " + xml::escape(view.host.ip) + ", " +
                     (view.host.is_up() ? "up" : "down") + ", last heard " +
                     std::to_string(view.host.tn) + "s ago</p>";
  for (const auto& [metric_name, series] : histories) {
    rrd::SvgGraphOptions graph;
    graph.title = metric_name + " — " + view.host.name;
    body += "<div>" + rrd::render_svg(series, graph) + "</div>";
  }
  body += "<table><tr><th>Metric</th><th>Value</th><th>Units</th>"
          "<th>Type</th><th>TN</th></tr>";
  for (const Metric& m : view.host.metrics) {
    body += "<tr><td>" + xml::escape(m.name) + "</td><td>" +
            xml::escape(m.value) + "</td><td>" + xml::escape(m.units) +
            "</td><td>" + std::string(metric_type_name(m.type)) + "</td><td>" +
            std::to_string(m.tn) + "</td></tr>";
  }
  body += "</table>";
  return page("Host " + view.host.name + " (" + view.cluster_name + ")", body);
}

}  // namespace ganglia::presenter
