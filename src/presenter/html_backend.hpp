// HTML backends for the unified render pipeline.
//
// The presenter used to walk the monitoring tree itself to build its three
// pages; these Backend implementations consume the same event stream as the
// XML and JSON backends (gmetad/render), so HTML is the third consumer of
// the single traversal rather than a fourth walker.  Each backend builds
// the page body incrementally from events and assembles the final document
// in take_html(); the byte output matches the old view-struct renderers
// exactly (the presenter tests compare against golden substrings).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "gmetad/render/backend.hpp"
#include "presenter/viewer.hpp"
#include "rrd/graph.hpp"

namespace ganglia::presenter {

/// Meta view: one summary row per source plus the grand TOTAL row.  The
/// document walk enters each source twice (clusters pass, grids pass), so
/// rows are found-or-created by name and summaries merge across both
/// visits — the merged row equals the source's whole-tree reduction.
class MetaHtmlBackend : public gmetad::render::Backend {
 public:
  void begin_document(const gmetad::render::DocumentInfo& info) override;
  void begin_source(const gmetad::render::SourceInfo& info) override;
  void end_source() override;
  void summary(const SummaryInfo& info) override;
  void total(const SummaryInfo& info) override;

  /// Assemble the page (valid once the walk has finished).
  std::string take_html() const;

 private:
  MetaView view_;
  std::size_t current_ = static_cast<std::size_t>(-1);  ///< row index
};

/// Cluster view: the per-host table.  Host state and the three displayed
/// metrics are captured as their events stream past; a summary event (a
/// summary-form cluster) fills the up/down header with no rows.
class ClusterHtmlBackend : public gmetad::render::Backend {
 public:
  void begin_cluster(const Cluster& cluster) override;
  void begin_host(const Host& host) override;
  void metric(const Host& host, const Metric& metric) override;
  void end_host(const Host& host) override;
  void summary(const SummaryInfo& info) override;

  std::string take_html() const;

 private:
  struct Row {
    std::string name;
    std::string ip;
    bool up = false;
    std::string load = "-";
    std::string cpu = "-";
    std::string mem = "-";
  };
  std::string name_;
  std::size_t hosts_up_ = 0;
  std::size_t hosts_down_ = 0;
  std::vector<Row> rows_;
  bool have_row_ = false;
};

/// Host view: the metric table, preceded by inline SVG graphs for whichever
/// metrics have archived history (supplied by the caller — history is the
/// archiver's business, not the tree walk's).
class HostHtmlBackend : public gmetad::render::Backend {
 public:
  HostHtmlBackend(
      std::string cluster_name,
      const std::vector<std::pair<std::string, rrd::Series>>& histories)
      : cluster_name_(std::move(cluster_name)), histories_(histories) {}

  void begin_host(const Host& host) override;
  void metric(const Host& host, const Metric& metric) override;

  std::string take_html() const;

 private:
  std::string cluster_name_;
  const std::vector<std::pair<std::string, rrd::Series>>& histories_;
  std::string host_name_;
  std::string header_;
  std::string table_rows_;
};

}  // namespace ganglia::presenter
